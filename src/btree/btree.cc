#include "src/btree/btree.h"

#include <cassert>
#include <optional>

#include "src/btree/iterator.h"
#include "src/util/coding.h"

namespace soreorg {

namespace {

std::string EncodePid(PageId pid) {
  std::string s;
  PutFixed32(&s, pid);
  return s;
}

PageId DecodePid(const Slice& s) {
  return s.size() == 4 ? DecodeFixed32(s.data()) : kInvalidPageId;
}

}  // namespace

BTree::BTree(BufferPool* bp, LogManager* log, LockManager* locks,
             BTreeOptions options)
    : bp_(bp), log_(log), locks_(locks), options_(options) {}

Status BTree::Create() {
  // One empty leaf under a root base page whose single separator is the
  // empty key (-infinity).
  PageId leaf_pid, root_pid;
  Page* leaf_page;
  Status s = bp_->NewPage(&leaf_pid, &leaf_page);
  if (!s.ok()) return s;
  LeafNode::Format(leaf_page, leaf_pid);

  Page* root_page;
  s = bp_->NewPage(&root_pid, &root_page);
  if (!s.ok()) {
    bp_->UnpinPage(leaf_pid, false);
    return s;
  }
  InternalNode::Format(root_page, root_pid, /*level=*/1, Slice());
  InternalNode root(root_page);
  s = root.Insert(Slice(), leaf_pid);
  assert(s.ok());

  // Log the creation so redo can rebuild it.
  LogRecord fmt_leaf;
  fmt_leaf.type = LogType::kFormatPage;
  fmt_leaf.page_id = leaf_pid;
  fmt_leaf.unit_type = static_cast<uint8_t>(PageType::kLeaf);
  log_->Append(&fmt_leaf);
  leaf_page->set_page_lsn(fmt_leaf.lsn);

  LogRecord fmt_root;
  fmt_root.type = LogType::kFormatPage;
  fmt_root.page_id = root_pid;
  fmt_root.unit_type = static_cast<uint8_t>(PageType::kInternal);
  fmt_root.flags = 1;  // level
  log_->Append(&fmt_root);

  LogRecord ins;
  ins.type = LogType::kInsert;
  ins.flags = kInternalCell;
  ins.page_id = root_pid;
  ins.value = EncodePid(leaf_pid);
  log_->Append(&ins);
  root_page->set_page_lsn(ins.lsn);

  LogRecord rc;
  rc.type = LogType::kRootChange;
  rc.page_id = root_pid;
  rc.flags = 2;  // height
  log_->AppendAndFlush(&rc);

  bp_->UnpinPage(leaf_pid, true);
  bp_->UnpinPage(root_pid, true);

  root_.store(root_pid);
  height_.store(2);
  incarnation_.store(1);
  return Status::OK();
}

void BTree::Attach(PageId root, uint8_t height, uint64_t incarnation) {
  root_.store(root);
  height_.store(height);
  incarnation_.store(incarnation);
}

void BTree::set_base_update_hook(BaseUpdateHook hook) {
  std::lock_guard<std::mutex> g(hook_mu_);
  base_update_hook_ = std::move(hook);
}

void BTree::set_base_update_cancel_hook(BaseUpdateCancelHook hook) {
  std::lock_guard<std::mutex> g(hook_mu_);
  base_update_cancel_hook_ = std::move(hook);
}

void BTree::CancelBaseUpdate(Transaction* txn, BaseUpdateOp op,
                             const Slice& key, PageId leaf) {
  BaseUpdateCancelHook hook;
  {
    std::lock_guard<std::mutex> g(hook_mu_);
    hook = base_update_cancel_hook_;
  }
  if (hook) hook(txn, op, key, leaf);
}

Status BTree::LowerSeparatorIfNeeded(Transaction* txn, const Slice& key) {
  TxnId id = txn->id();
  for (int attempt = 0; attempt < options_.max_retries; ++attempt) {
    std::vector<PageId> path;
    Status s = FindPathPessimistic(id, key, /*for_insert=*/false, 0,
                                   /*stop_level=*/1, &path);
    if (s.IsDeadlock() || s.IsBusy()) continue;
    if (!s.ok()) return s;
    PageId base = path.back();

    Page* page;
    s = bp_->FetchPage(base, &page);
    if (!s.ok()) {
      UnlockPages(id, &path);
      return s;
    }
    int slot;
    std::string old_sep;
    PageId leaf = kInvalidPageId;
    {
      std::shared_lock<PageLatch> latch(page->latch());
      InternalNode node(page);
      slot = node.FindChild(key);
      old_sep = node.KeyAt(slot).ToString();
      leaf = node.ChildAt(slot);
    }
    if (Slice(old_sep).compare(key) <= 0) {
      bp_->UnpinPage(base, false);
      UnlockPages(id, &path);
      return Status::OK();  // already exact
    }

    // Report the separator change to the pass-3 side file as a
    // delete + re-insert of the leaf's base entry.
    Status h1 = NotifyBaseUpdate(txn, BaseUpdateOp::kDelete, old_sep, leaf,
                                 base);
    if (h1.IsBusy()) {
      bp_->UnpinPage(base, false);
      UnlockPages(id, &path);
      continue;  // the tree switched; redo against the new tree
    }
    if (!h1.ok()) {
      bp_->UnpinPage(base, false);
      UnlockPages(id, &path);
      return h1;
    }
    Status h2 = NotifyBaseUpdate(txn, BaseUpdateOp::kInsert,
                                 key.ToString(), leaf, base);
    if (!h2.ok()) {
      CancelBaseUpdate(txn, BaseUpdateOp::kDelete, old_sep, leaf);
      bp_->UnpinPage(base, false);
      UnlockPages(id, &path);
      if (h2.IsBusy()) continue;
      return h2;
    }

    BufferPool::ApplyScope apply_scope(bp_);
    {
      std::unique_lock<PageLatch> latch(page->latch());
      InternalNode node(page);
      // Re-verify under the exclusive latch (we hold the base X lock, so
      // the slot cannot have changed — this is belt and braces).
      int s2 = node.FindChildSlot(leaf);
      if (s2 >= 0 && node.KeyAt(s2).compare(key) > 0) {
        LogRecord mod;
        mod.type = LogType::kReorgModify;
        mod.txn_id = txn->id();
        mod.page_id = base;
        mod.key = old_sep;
        {
          std::string pid_bytes;
          PutFixed32(&pid_bytes, leaf);
          mod.value = pid_bytes;
          mod.value2 = pid_bytes;
        }
        mod.key2 = key.ToString();
        log_->Append(&mod);
        node.SetKeyAt(s2, key);
        page->set_page_lsn(mod.lsn);
      }
    }
    bp_->UnpinPage(base, true);
    UnlockPages(id, &path);
    return Status::OK();
  }
  return Status::Busy("separator lowering retries exhausted");
}

Status BTree::NotifyBaseUpdate(Transaction* txn, BaseUpdateOp op,
                               const Slice& key, PageId leaf,
                               PageId base_pid) {
  if (!reorg_bit_.load()) return Status::OK();
  BaseUpdateHook hook;
  {
    std::lock_guard<std::mutex> g(hook_mu_);
    hook = base_update_hook_;
  }
  if (!hook) return Status::OK();
  return hook(txn, op, key, leaf, base_pid);
}

Status BTree::UnlockPages(TxnId locker, std::vector<PageId>* pids) {
  for (auto it = pids->rbegin(); it != pids->rend(); ++it) {
    locks_->Unlock(locker, PageLock(*it));
  }
  pids->clear();
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Descent
// ---------------------------------------------------------------------------

Status BTree::FindLeaf(TxnId locker, const Slice& key, LockMode leaf_mode,
                       bool keep_base_lock, DescentResult* out) {
  for (int attempt = 0; attempt < options_.max_retries; ++attempt) {
    PageId cur = root_.load();
    Status s = locks_->Lock(locker, PageLock(cur), LockMode::kS);
    if (!s.ok()) return s;
    if (cur != root_.load()) {  // root split raced us
      locks_->Unlock(locker, PageLock(cur));
      continue;
    }
    bool retry_outer = false;
    while (true) {
      Page* page;
      s = bp_->FetchPage(cur, &page);
      if (!s.ok()) {
        locks_->Unlock(locker, PageLock(cur));
        return s;
      }
      PageId child;
      uint8_t level;
      std::string child_sep;
      {
        std::shared_lock<PageLatch> latch(page->latch());
        InternalNode node(page);
        level = page->level();
        int idx = node.FindChild(key);
        child = node.ChildAt(idx);
        if (level == 1) child_sep = node.KeyAt(idx).ToString();
      }
      bp_->UnpinPage(cur, false);

      if (level == 1) {
        // `cur` is the base page; `child` is the target leaf.
        s = locks_->Lock(locker, PageLock(child), leaf_mode);
        if (s.IsBackoff()) {
          // Paper protocol: give up the base-page S lock, wait out the
          // reorganizer with an unconditional instant-duration RS lock on
          // the base page, then retry the whole traversal.
          locks_->Unlock(locker, PageLock(cur));
          Status rs = locks_->LockInstant(locker, PageLock(cur), LockMode::kRS);
          if (!rs.ok()) return rs;
          retry_outer = true;
          break;
        }
        if (!s.ok()) {
          locks_->Unlock(locker, PageLock(cur));
          return s;
        }
        out->leaf = child;
        out->base = cur;
        out->base_locked = keep_base_lock;
        out->leaf_separator = std::move(child_sep);
        if (!keep_base_lock) locks_->Unlock(locker, PageLock(cur));
        return Status::OK();
      }

      // Internal level > 1: S lock-couple downward.
      s = locks_->Lock(locker, PageLock(child), LockMode::kS);
      if (!s.ok()) {
        locks_->Unlock(locker, PageLock(cur));
        return s;
      }
      locks_->Unlock(locker, PageLock(cur));
      cur = child;
    }
    if (retry_outer) continue;
  }
  return Status::Busy("descent retries exhausted");
}

Status BTree::FindLeafPessimistic(TxnId locker, const Slice& key,
                                  bool for_insert, size_t need_bytes,
                                  std::vector<PageId>* locked_path) {
  return FindPathPessimistic(locker, key, for_insert, need_bytes,
                             /*stop_level=*/0, locked_path);
}

Status BTree::FindPathPessimistic(TxnId locker, const Slice& key,
                                  bool for_insert, size_t need_bytes,
                                  uint8_t stop_level,
                                  std::vector<PageId>* locked_path) {
  locked_path->clear();
  for (int attempt = 0; attempt < options_.max_retries; ++attempt) {
    PageId cur = root_.load();
    Status s = locks_->Lock(locker, PageLock(cur), LockMode::kX);
    if (!s.ok()) return s;
    if (cur != root_.load()) {
      locks_->Unlock(locker, PageLock(cur));
      continue;
    }
    locked_path->push_back(cur);
    bool retry_outer = false;

    while (true) {
      Page* page;
      s = bp_->FetchPage(cur, &page);
      if (!s.ok()) {
        UnlockPages(locker, locked_path);
        return s;
      }
      uint8_t level = page->level();

      // Safety check (Bayer-Scholnick): release ancestors above a node that
      // cannot propagate the structure modification.
      bool safe;
      {
        std::shared_lock<PageLatch> latch(page->latch());
        if (page->type() == PageType::kLeaf) {
          LeafNode ln(page);
          safe = for_insert ? ln.FreeSpace() >= need_bytes : ln.Count() > 1;
        } else {
          InternalNode in(page);
          safe = for_insert
                     ? in.FreeSpace() >= InternalNode::CellSize(key) + 16
                     : in.Count() > 1;
        }
      }
      if (safe && locked_path->size() > 1) {
        // Unlock everything above `cur`.
        for (size_t i = 0; i + 1 < locked_path->size(); ++i) {
          locks_->Unlock(locker, PageLock((*locked_path)[i]));
        }
        PageId keep = locked_path->back();
        locked_path->clear();
        locked_path->push_back(keep);
      }

      if (level == stop_level) {
        bp_->UnpinPage(cur, false);
        return Status::OK();
      }

      PageId child;
      {
        std::shared_lock<PageLatch> latch(page->latch());
        InternalNode node(page);
        child = node.ChildAt(node.FindChild(key));
      }
      bp_->UnpinPage(cur, false);

      s = locks_->Lock(locker, PageLock(child), LockMode::kX);
      if (s.IsBackoff()) {
        // Leaf under RX: updater protocol — drop everything, RS-wait on the
        // base page (== cur), retry the traversal.
        PageId base = locked_path->back();
        UnlockPages(locker, locked_path);
        Status rs = locks_->LockInstant(locker, PageLock(base), LockMode::kRS);
        if (!rs.ok()) return rs;
        retry_outer = true;
        break;
      }
      if (!s.ok()) {
        UnlockPages(locker, locked_path);
        return s;
      }
      locked_path->push_back(child);
      cur = child;
    }
    if (retry_outer) continue;
  }
  return Status::Busy("pessimistic descent retries exhausted");
}

// ---------------------------------------------------------------------------
// Logging helpers
// ---------------------------------------------------------------------------

Status BTree::LogRecordOp(Transaction* txn, LogType type, PageId page,
                          const Slice& key, const Slice& old_value,
                          const Slice& new_value, Page* page_obj) {
  LogRecord rec;
  rec.type = type;
  rec.txn_id = txn->id();
  rec.prev_lsn = txn->last_lsn();
  rec.page_id = page;
  rec.key = key.ToString();
  if (type == LogType::kDelete) {
    rec.value = old_value.ToString();
  } else if (type == LogType::kUpdate) {
    rec.value = old_value.ToString();
    rec.value2 = new_value.ToString();
  } else {
    rec.value = new_value.ToString();
  }
  Status s = log_->Append(&rec);
  if (!s.ok()) return s;
  txn->set_last_lsn(rec.lsn);
  page_obj->set_page_lsn(rec.lsn);
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Insert
// ---------------------------------------------------------------------------

Status BTree::Insert(Transaction* txn, const Slice& key, const Slice& value) {
  assert(txn != nullptr);
  TxnId id = txn->id();
  Status s = locks_->Lock(id, TreeLock(incarnation_.load()), LockMode::kIX);
  if (!s.ok()) return s;

  size_t need = LeafNode::CellSize(key, value);
  if (need > kPageSize / 4) {
    return Status::InvalidArgument("record too large");
  }

  for (int attempt = 0; attempt < options_.max_retries; ++attempt) {
    uint64_t seen = incarnation_.load();
    DescentResult r;
    s = FindLeaf(id, key, LockMode::kX, /*keep_base_lock=*/false, &r);
    if (!s.ok()) return s;
    if (incarnation_.load() != seen) {
      // Root flipped mid-descent (§7.4 step-aside): the old-tree routing
      // that picked this leaf may be stale. Re-descend via the new root.
      locks_->Unlock(id, PageLock(r.leaf));
      continue;
    }

    if (key.compare(r.leaf_separator) < 0) {
      // The key is below its leaf's separator (reachable only via slot-0
      // clamping). Lower the separator first so separators stay exact —
      // pass 3's flat rebuild depends on it.
      locks_->Unlock(id, PageLock(r.leaf));
      s = LowerSeparatorIfNeeded(txn, key);
      if (!s.ok()) return s;
      continue;
    }

    Page* leaf_page;
    s = bp_->FetchPage(r.leaf, &leaf_page);
    if (!s.ok()) {
      locks_->Unlock(id, PageLock(r.leaf));
      return s;
    }
    bool fits;
    bool exact;
    {
      std::shared_lock<PageLatch> latch(leaf_page->latch());
      LeafNode ln(leaf_page);
      ln.LowerBound(key, &exact);
      fits = ln.FreeSpace() >= need;
    }
    if (exact) {
      bp_->UnpinPage(r.leaf, false);
      locks_->Unlock(id, PageLock(r.leaf));
      return Status::InvalidArgument("duplicate key");
    }
    if (fits) {
      BufferPool::ApplyScope apply_scope(bp_);
      {
        std::unique_lock<PageLatch> latch(leaf_page->latch());
        LeafNode ln(leaf_page);
        s = ln.Insert(key, value);
        if (s.ok()) {
          s = LogRecordOp(txn, LogType::kInsert, r.leaf, key, Slice(), value,
                          leaf_page);
        }
      }
      bp_->UnpinPage(r.leaf, s.ok());
      if (!s.ok()) locks_->Unlock(id, PageLock(r.leaf));
      return s;  // leaf X lock retained until commit/abort
    }
    bp_->UnpinPage(r.leaf, false);
    locks_->Unlock(id, PageLock(r.leaf));

    // Leaf is full: pessimistic descent + split.
    std::vector<PageId> path;
    s = FindLeafPessimistic(id, key, /*for_insert=*/true, need, &path);
    if (!s.ok()) return s;
    if (incarnation_.load() != seen) {
      // The descent may have been blocked across an entire switch (§7.4); a
      // split along a superseded path would put the separator in the old
      // tree's base, invisible to the new tree. Re-descend via the new root.
      UnlockPages(id, &path);
      continue;
    }

    s = bp_->FetchPage(path.back(), &leaf_page);
    if (!s.ok()) {
      UnlockPages(id, &path);
      return s;
    }
    bool fits_now;
    {
      std::shared_lock<PageLatch> latch(leaf_page->latch());
      LeafNode ln(leaf_page);
      fits_now = ln.FreeSpace() >= need;
    }
    bp_->UnpinPage(path.back(), false);

    if (!fits_now) {
      s = SplitLeaf(txn, path, key);
      if (s.IsBusy() || s.IsBackoff() || s.IsDeadlock()) {
        UnlockPages(id, &path);
        continue;  // retry whole operation
      }
      if (!s.ok()) {
        UnlockPages(id, &path);
        return s;
      }
      // path.back() may no longer be the right leaf for `key`; retry loop
      // will re-descend. Release structure locks first.
      UnlockPages(id, &path);
      continue;
    }

    // It fits after all (another txn freed space): retry through the
    // optimistic path so the separator-exactness check runs.
    UnlockPages(id, &path);
  }
  return Status::Busy("insert retries exhausted");
}


// ---------------------------------------------------------------------------
// Splits
// ---------------------------------------------------------------------------

Status BTree::InsertSeparatorInto(Transaction* txn, PageId node_pid,
                                  const Slice& separator, PageId child) {
  Page* page;
  Status s = bp_->FetchPage(node_pid, &page);
  if (!s.ok()) return s;
  Status rs;
  BufferPool::ApplyScope apply_scope(bp_);
  {
    std::unique_lock<PageLatch> latch(page->latch());
    InternalNode node(page);
    rs = node.Insert(separator, child);
    if (rs.ok()) {
      LogRecord rec;
      rec.type = LogType::kInsert;
      rec.flags = kInternalCell;
      rec.txn_id = txn->id();
      rec.page_id = node_pid;
      rec.key = separator.ToString();
      rec.value = EncodePid(child);
      log_->Append(&rec);
      page->set_page_lsn(rec.lsn);
    }
  }
  bp_->UnpinPage(node_pid, rs.ok());
  return rs;
}

Status BTree::SplitInternal(Transaction* txn, const std::vector<PageId>& path,
                            size_t idx, std::string* out_separator,
                            PageId* out_new_pid) {
  TxnId id = txn->id();
  PageId node_pid = path[idx];

  Page* page;
  Status s = bp_->FetchPage(node_pid, &page);
  if (!s.ok()) return s;
  PageGuard guard(bp_, page);

  SlottedPage sp(page);
  int n = sp.slot_count();
  if (n < 2) return Status::Busy("cannot split near-empty internal node");
  int split_at = n / 2;
  InternalNode old_node(page);
  std::string separator = old_node.KeyAt(split_at).ToString();
  std::string moved = PackCellRange(sp, split_at, n);
  uint8_t level = page->level();

  PageId new_pid;
  Page* new_page;
  s = bp_->NewPage(&new_pid, &new_page);
  if (!s.ok()) return s;
  PageGuard new_guard(bp_, new_page);
  locks_->Lock(id, PageLock(new_pid), LockMode::kX);

  // Root split builds its new root before any cells move, so every fallible
  // step precedes the physical change.
  PageId new_root = kInvalidPageId;
  Page* root_page = nullptr;
  if (idx == 0) {
    s = bp_->NewPage(&new_root, &root_page);
    if (!s.ok()) {
      locks_->Unlock(id, PageLock(new_pid));
      return s;
    }
  }

  std::vector<std::string> cells;
  UnpackCells(moved, &cells);
  // Physical change through dirty-unpin rides in one apply scope so a
  // concurrent checkpoint's redo floor cannot split it.
  BufferPool::ApplyScope apply_scope(bp_);
  {
    std::unique_lock<PageLatch> latch(new_page->latch());
    InternalNode::Format(new_page, new_pid, level, separator);
    SlottedPage nsp(new_page);
    for (size_t i = 0; i < cells.size(); ++i) {
      nsp.InsertCell(static_cast<int>(i), cells[i]);
    }
  }
  {
    std::unique_lock<PageLatch> latch(page->latch());
    SlottedPage osp(page);
    for (int i = n - 1; i >= split_at; --i) osp.RemoveCell(i);
  }

  LogRecord rec;
  rec.type = LogType::kInternalSplit;
  rec.txn_id = txn->id();
  rec.page_id = node_pid;
  rec.page_id2 = new_pid;
  rec.key = separator;
  rec.payload = moved;
  rec.flags = level;

  if (idx == 0) {
    PageGuard root_guard(bp_, root_page);
    uint8_t new_height = static_cast<uint8_t>(height_.load() + 1);
    {
      std::unique_lock<PageLatch> latch(root_page->latch());
      InternalNode::Format(root_page, new_root,
                           static_cast<uint8_t>(level + 1), Slice());
      InternalNode r(root_page);
      r.Insert(Slice(), node_pid);
      r.Insert(separator, new_pid);
    }
    rec.page_id3 = kInvalidPageId;
    rec.value2 = EncodePid(new_root);
    log_->Append(&rec);
    page->set_page_lsn(rec.lsn);
    new_page->set_page_lsn(rec.lsn);
    root_page->set_page_lsn(rec.lsn);

    LogRecord rc;
    rc.type = LogType::kRootChange;
    rc.txn_id = txn->id();
    rc.page_id = new_root;
    rc.page_id2 = node_pid;
    rc.flags = new_height;
    log_->Append(&rc);

    guard.MarkDirty();
    new_guard.MarkDirty();
    root_guard.MarkDirty();
    root_.store(new_root);
    height_.store(new_height);
  } else {
    rec.page_id3 = path[idx - 1];
    log_->Append(&rec);
    page->set_page_lsn(rec.lsn);
    new_page->set_page_lsn(rec.lsn);
    guard.MarkDirty();
    new_guard.MarkDirty();
    // The parent is guaranteed (by EnsureSeparatorRoom) to have room.
    s = InsertSeparatorInto(txn, path[idx - 1], separator, new_pid);
    if (!s.ok()) {
      guard.Release();
      new_guard.Release();
      locks_->Unlock(id, PageLock(new_pid));
      return s;
    }
  }

  // Dirty-unpin both halves while still inside the apply scope (the guards
  // themselves outlive it).
  guard.Release();
  new_guard.Release();

  *out_separator = separator;
  *out_new_pid = new_pid;
  // The new right half stays X-locked; the caller unlocks it.
  return Status::OK();
}

Status BTree::EnsureSeparatorRoom(Transaction* txn,
                                  const std::vector<PageId>& path, size_t idx,
                                  const Slice& separator, PageId* target,
                                  std::vector<PageId>* extra_locked) {
  PageId node_pid = path[idx];
  Page* page;
  Status s = bp_->FetchPage(node_pid, &page);
  if (!s.ok()) return s;
  bool fits;
  std::string promoted;  // prospective separator if this node must split
  {
    std::shared_lock<PageLatch> latch(page->latch());
    InternalNode node(page);
    fits = node.FreeSpace() >= InternalNode::CellSize(separator);
    if (!fits && node.Count() >= 2) {
      promoted = node.KeyAt(node.Count() / 2).ToString();
    }
  }
  bp_->UnpinPage(node_pid, false);
  if (fits) {
    *target = node_pid;
    return Status::OK();
  }
  if (promoted.empty()) return Status::Busy("unsplittable internal node");

  // Make room in the parent for the separator this split will promote.
  if (idx > 0) {
    PageId parent_target;
    s = EnsureSeparatorRoom(txn, path, idx - 1, promoted, &parent_target,
                            extra_locked);
    if (!s.ok()) return s;
    // SplitInternal inserts into path[idx-1]; if the parent itself split and
    // the promoted key now belongs in its right half, steer via a local
    // path copy.
    if (parent_target != path[idx - 1]) {
      std::vector<PageId> adjusted(path.begin(), path.begin() + idx + 1);
      adjusted[idx - 1] = parent_target;
      std::string sep;
      PageId new_pid;
      s = SplitInternal(txn, adjusted, idx, &sep, &new_pid);
      if (!s.ok()) return s;
      extra_locked->push_back(new_pid);
      *target = Slice(sep).compare(separator) <= 0 ? new_pid : node_pid;
      return Status::OK();
    }
  }
  std::string sep;
  PageId new_pid;
  s = SplitInternal(txn, path, idx, &sep, &new_pid);
  if (!s.ok()) return s;
  extra_locked->push_back(new_pid);
  *target = Slice(sep).compare(separator) <= 0 ? new_pid : node_pid;
  return Status::OK();
}

Status BTree::SplitLeaf(Transaction* txn, const std::vector<PageId>& path,
                        const Slice& key) {
  (void)key;
  TxnId id = txn->id();
  if (path.size() < 2) {
    return Status::Busy("split without parent lock");
  }
  PageId leaf_pid = path.back();
  PageId parent_pid = path[path.size() - 2];

  Page* leaf_page;
  Status s = bp_->FetchPage(leaf_pid, &leaf_page);
  if (!s.ok()) return s;
  PageGuard leaf_guard(bp_, leaf_page);

  // 1. Read-only: choose the split point, separator and moved-cell bundle.
  SlottedPage sp(leaf_page);
  int n = sp.slot_count();
  if (n < 2) return Status::Busy("cannot split near-empty leaf");
  size_t used = sp.UsedSpace();
  size_t target_bytes = static_cast<size_t>(
      static_cast<double>(used) * options_.split_fraction);
  size_t acc = 0;
  int split_at = n - 1;
  for (int i = 0; i < n - 1; ++i) {
    acc += sp.GetCell(i).size() + 4;
    if (acc >= target_bytes) {
      split_at = i + 1;
      break;
    }
  }
  LeafNode old_leaf(leaf_page);
  std::string separator = old_leaf.KeyAt(split_at).ToString();
  std::string moved = PackCellRange(sp, split_at, n);
  PageId old_next = leaf_page->next();

  // 2. Allocate + X-lock the new right leaf (before the hook, which needs
  // the leaf pid for the side-file entry).
  PageId new_pid;
  Page* new_page;
  s = bp_->NewPage(&new_pid, &new_page);
  if (!s.ok()) return s;
  PageGuard new_guard(bp_, new_page);
  locks_->Lock(id, PageLock(new_pid), LockMode::kX);
  auto abandon_new = [&]() {
    new_guard.Release();
    locks_->Unlock(id, PageLock(new_pid));
    bp_->DeletePage(new_pid);
  };

  // 3. Pass-3 interception (before any physical change).
  std::vector<PageId> redirected_path;
  PageId sep_node = parent_pid;
  std::vector<PageId> parent_path(path.begin(), path.end() - 1);
  s = NotifyBaseUpdate(txn, BaseUpdateOp::kInsert, separator, new_pid,
                       parent_pid);
  if (s.IsBusy()) {
    // The tree switched: the separator belongs in the NEW tree's base level.
    s = FindPathPessimistic(id, separator, /*for_insert=*/true,
                            InternalNode::CellSize(separator) + 16,
                            /*stop_level=*/1, &redirected_path);
    if (!s.ok()) {
      abandon_new();
      return s;
    }
    parent_path = redirected_path;
    sep_node = redirected_path.back();
    Status hs = NotifyBaseUpdate(txn, BaseUpdateOp::kInsert, separator,
                                 new_pid, sep_node);
    if (!hs.ok()) {
      UnlockPages(id, &redirected_path);
      abandon_new();
      return hs;
    }
  } else if (!s.ok()) {
    abandon_new();
    return s;
  }
  auto cleanup_redirect = [&]() {
    if (!redirected_path.empty()) UnlockPages(id, &redirected_path);
  };
  auto cancel_hook = [&]() {
    CancelBaseUpdate(txn, BaseUpdateOp::kInsert, separator, new_pid);
  };

  // 4. Lock the side-pointer neighbor (before data moves, §4.3).
  bool fix_neighbor = options_.side_pointers == SidePointerMode::kTwoWay &&
                      old_next != kInvalidPageId;
  if (fix_neighbor) {
    s = locks_->Lock(id, PageLock(old_next), LockMode::kX);
    if (!s.ok()) {
      cancel_hook();
      cleanup_redirect();
      abandon_new();
      return s;  // Backoff/Deadlock bubbles up; caller retries the op.
    }
  }
  auto unlock_neighbor = [&]() {
    if (fix_neighbor) locks_->Unlock(id, PageLock(old_next));
  };

  // 5. Guarantee separator room in the (possibly redirected) base level.
  PageId sep_target = sep_node;
  std::vector<PageId> extra_locked;
  s = EnsureSeparatorRoom(txn, parent_path, parent_path.size() - 1, separator,
                          &sep_target, &extra_locked);
  if (!s.ok()) {
    cancel_hook();
    unlock_neighbor();
    UnlockPages(id, &extra_locked);
    cleanup_redirect();
    abandon_new();
    return s;
  }

  // --- point of no return: all fallible steps done -------------------------

  // 6. Move the upper cells and fix side pointers. The whole physical
  // change (both leaf images, the neighbor's back pointer, the separator
  // insert) rides in one apply scope so a concurrent checkpoint's redo
  // floor cannot split any append from its byte effects.
  BufferPool::ApplyScope apply_scope(bp_);
  std::vector<std::string> cells;
  UnpackCells(moved, &cells);
  {
    std::unique_lock<PageLatch> latch(new_page->latch());
    LeafNode::Format(new_page, new_pid);
    SlottedPage nsp(new_page);
    for (size_t i = 0; i < cells.size(); ++i) {
      nsp.InsertCell(static_cast<int>(i), cells[i]);
    }
    if (options_.side_pointers != SidePointerMode::kNone) {
      new_page->SetNext(old_next);
      if (options_.side_pointers == SidePointerMode::kTwoWay) {
        new_page->SetPrev(leaf_pid);
      }
    }
  }
  {
    std::unique_lock<PageLatch> latch(leaf_page->latch());
    SlottedPage osp(leaf_page);
    for (int i = n - 1; i >= split_at; --i) osp.RemoveCell(i);
    if (options_.side_pointers != SidePointerMode::kNone) {
      leaf_page->SetNext(new_pid);
    }
  }

  // 7. Single atomic WAL record for the leaf-level change, then the
  // separator insert (its own physiological record).
  LogRecord rec;
  rec.type = LogType::kLeafSplit;
  rec.txn_id = txn->id();
  rec.page_id = leaf_pid;
  rec.page_id2 = new_pid;
  rec.page_id3 = sep_target;
  rec.key = separator;
  rec.payload = moved;
  rec.value = EncodePid(old_next);
  rec.flags = static_cast<uint8_t>(options_.side_pointers);
  log_->Append(&rec);
  leaf_page->set_page_lsn(rec.lsn);
  new_page->set_page_lsn(rec.lsn);
  leaf_guard.MarkDirty();
  new_guard.MarkDirty();

  if (fix_neighbor) {
    Page* nb;
    if (bp_->FetchPage(old_next, &nb).ok()) {
      {
        std::unique_lock<PageLatch> latch(nb->latch());
        nb->SetPrev(new_pid);
        nb->set_page_lsn(rec.lsn);
      }
      bp_->UnpinPage(old_next, true);
    }
  }

  s = InsertSeparatorInto(txn, sep_target, separator, new_pid);
  // Cannot fail: room was reserved under X locks. Surface any surprise.
  assert(s.ok());

  // Dirty-unpin both leaves while still inside the apply scope (the guards
  // themselves outlive it).
  leaf_guard.Release();
  new_guard.Release();

  unlock_neighbor();
  UnlockPages(id, &extra_locked);
  locks_->Unlock(id, PageLock(new_pid));
  cleanup_redirect();
  return s;
}

// ---------------------------------------------------------------------------
// Update / Delete
// ---------------------------------------------------------------------------

Status BTree::Update(Transaction* txn, const Slice& key, const Slice& value) {
  assert(txn != nullptr);
  TxnId id = txn->id();
  Status s = locks_->Lock(id, TreeLock(incarnation_.load()), LockMode::kIX);
  if (!s.ok()) return s;

  for (int attempt = 0; attempt < options_.max_retries; ++attempt) {
    uint64_t seen = incarnation_.load();
    DescentResult r;
    s = FindLeaf(id, key, LockMode::kX, /*keep_base_lock=*/false, &r);
    if (!s.ok()) return s;
    if (incarnation_.load() != seen) {
      // Root flipped mid-descent (§7.4 step-aside): re-descend.
      locks_->Unlock(id, PageLock(r.leaf));
      continue;
    }

    Page* leaf_page;
    s = bp_->FetchPage(r.leaf, &leaf_page);
    if (!s.ok()) {
      locks_->Unlock(id, PageLock(r.leaf));
      return s;
    }
    bool exact;
    int pos;
    bool fits = false;
    std::string old_value;
    {
      std::shared_lock<PageLatch> latch(leaf_page->latch());
      LeafNode ln(leaf_page);
      pos = ln.LowerBound(key, &exact);
      if (exact) {
        old_value = ln.ValueAt(pos).ToString();
        size_t old_cell = LeafNode::CellSize(key, old_value);
        size_t new_cell = LeafNode::CellSize(key, value);
        fits = new_cell <= old_cell || ln.FreeSpace() >= new_cell - old_cell;
      }
    }
    if (!exact) {
      bp_->UnpinPage(r.leaf, false);
      locks_->Unlock(id, PageLock(r.leaf));
      return Status::NotFound("key not found");
    }
    if (fits) {
      BufferPool::ApplyScope apply_scope(bp_);
      {
        std::unique_lock<PageLatch> latch(leaf_page->latch());
        LeafNode ln(leaf_page);
        s = ln.SetValueAt(pos, value);
        if (s.ok()) {
          s = LogRecordOp(txn, LogType::kUpdate, r.leaf, key, old_value,
                          value, leaf_page);
        }
      }
      bp_->UnpinPage(r.leaf, s.ok());
      if (!s.ok()) locks_->Unlock(id, PageLock(r.leaf));
      return s;
    }
    bp_->UnpinPage(r.leaf, false);
    locks_->Unlock(id, PageLock(r.leaf));
    // Grow-in-place impossible: delete + reinsert (handles the split).
    s = Delete(txn, key);
    if (!s.ok()) return s;
    return Insert(txn, key, value);
  }
  return Status::Busy("update retries exhausted");
}

Status BTree::Delete(Transaction* txn, const Slice& key) {
  assert(txn != nullptr);
  TxnId id = txn->id();
  Status s = locks_->Lock(id, TreeLock(incarnation_.load()), LockMode::kIX);
  if (!s.ok()) return s;

  for (int attempt = 0; attempt < options_.max_retries; ++attempt) {
    uint64_t seen = incarnation_.load();
    DescentResult r;
    s = FindLeaf(id, key, LockMode::kX, /*keep_base_lock=*/false, &r);
    if (!s.ok()) return s;
    if (incarnation_.load() != seen) {
      // Root flipped mid-descent (§7.4 step-aside): re-descend.
      locks_->Unlock(id, PageLock(r.leaf));
      continue;
    }

    Page* leaf_page;
    s = bp_->FetchPage(r.leaf, &leaf_page);
    if (!s.ok()) {
      locks_->Unlock(id, PageLock(r.leaf));
      return s;
    }
    bool exact;
    int pos;
    int count;
    std::string old_value;
    {
      std::shared_lock<PageLatch> latch(leaf_page->latch());
      LeafNode ln(leaf_page);
      pos = ln.LowerBound(key, &exact);
      count = ln.Count();
      if (exact) old_value = ln.ValueAt(pos).ToString();
    }
    if (!exact) {
      bp_->UnpinPage(r.leaf, false);
      locks_->Unlock(id, PageLock(r.leaf));
      return Status::NotFound("key not found");
    }
    if (count > 1) {
      BufferPool::ApplyScope apply_scope(bp_);
      {
        std::unique_lock<PageLatch> latch(leaf_page->latch());
        LeafNode ln(leaf_page);
        ln.RemoveAt(pos);
        s = LogRecordOp(txn, LogType::kDelete, r.leaf, key, old_value,
                        Slice(), leaf_page);
      }
      bp_->UnpinPage(r.leaf, s.ok());
      if (!s.ok()) locks_->Unlock(id, PageLock(r.leaf));
      return s;
    }
    bp_->UnpinPage(r.leaf, false);
    locks_->Unlock(id, PageLock(r.leaf));

    // The leaf would become empty: free-at-empty path with X-coupled
    // ancestors (paper §2 / [JS93]).
    std::vector<PageId> path;
    s = FindLeafPessimistic(id, key, /*for_insert=*/false, 0, &path);
    if (!s.ok()) return s;
    if (incarnation_.load() != seen) {
      // Blocked across a switch (§7.4): unlinking along a superseded path
      // would remove the separator from the old tree's base only. Re-descend.
      UnlockPages(id, &path);
      continue;
    }

    s = bp_->FetchPage(path.back(), &leaf_page);
    if (!s.ok()) {
      UnlockPages(id, &path);
      return s;
    }
    bool exact2;
    int pos2;
    int count2;
    {
      std::shared_lock<PageLatch> latch(leaf_page->latch());
      LeafNode ln(leaf_page);
      pos2 = ln.LowerBound(key, &exact2);
      count2 = ln.Count();
      if (exact2) old_value = ln.ValueAt(pos2).ToString();
    }
    if (!exact2) {
      bp_->UnpinPage(path.back(), false);
      UnlockPages(id, &path);
      return Status::NotFound("key vanished during retry");
    }
    {
      BufferPool::ApplyScope apply_scope(bp_);
      {
        std::unique_lock<PageLatch> latch(leaf_page->latch());
        LeafNode ln(leaf_page);
        ln.RemoveAt(pos2);
        s = LogRecordOp(txn, LogType::kDelete, path.back(), key, old_value,
                        Slice(), leaf_page);
      }
      bp_->UnpinPage(path.back(), s.ok());
    }
    if (!s.ok()) {
      UnlockPages(id, &path);
      return s;
    }
    if (count2 == 1) {
      // Free-at-empty. A failure here is benign: the empty leaf simply
      // stays linked until a later pass removes it.
      FreeEmptyLeaf(txn, path);
    }
    PageId leaf_kept = path.back();
    path.pop_back();
    UnlockPages(id, &path);
    (void)leaf_kept;  // leaf X lock retained until commit/abort
    return Status::OK();
  }
  return Status::Busy("delete retries exhausted");
}

Status BTree::FreeEmptyLeaf(Transaction* txn, const std::vector<PageId>& path) {
  TxnId id = txn->id();
  if (path.size() < 2) return Status::Busy("no parent lock for unlink");
  PageId leaf_pid = path.back();

  Page* leaf_page;
  Status s = bp_->FetchPage(leaf_pid, &leaf_page);
  if (!s.ok()) return s;
  PageId prev_pid = leaf_page->prev();
  PageId next_pid = leaf_page->next();
  bp_->UnpinPage(leaf_pid, false);

  PageId parent_pid = path[path.size() - 2];
  Page* parent_page;
  s = bp_->FetchPage(parent_pid, &parent_page);
  if (!s.ok()) return s;
  std::string separator;
  int slot;
  {
    std::shared_lock<PageLatch> latch(parent_page->latch());
    InternalNode parent(parent_page);
    slot = parent.FindChildSlot(leaf_pid);
    if (slot >= 0) separator = parent.KeyAt(slot).ToString();
  }
  bp_->UnpinPage(parent_pid, false);
  if (slot < 0) return Status::Corruption("leaf missing from parent");

  // Never remove the last leaf under the root: a tree must keep at least
  // one leaf so searches have somewhere to land. (Checked before the pass-3
  // hook so a bail-out never leaves a phantom side-file entry.)
  {
    Page* pp;
    s = bp_->FetchPage(parent_pid, &pp);
    if (!s.ok()) return s;
    int pcount;
    {
      std::shared_lock<PageLatch> latch(pp->latch());
      InternalNode pn(pp);
      pcount = pn.Count();
    }
    bp_->UnpinPage(parent_pid, false);
    if (parent_pid == root_.load() && pcount <= 1) {
      return Status::OK();  // keep the (empty) last leaf
    }
  }

  // Pass-3 interception for the base-page change.
  s = NotifyBaseUpdate(txn, BaseUpdateOp::kDelete, separator, leaf_pid,
                       parent_pid);
  PageId sep_parent = parent_pid;
  std::vector<PageId> redirected;
  if (s.IsBusy()) {
    s = FindPathPessimistic(id, separator, /*for_insert=*/false, 0,
                            /*stop_level=*/1, &redirected);
    if (!s.ok()) return s;
    sep_parent = redirected.back();
    Status hs = NotifyBaseUpdate(txn, BaseUpdateOp::kDelete, separator,
                                 leaf_pid, sep_parent);
    if (!hs.ok()) {
      UnlockPages(id, &redirected);
      return hs;
    }
  } else if (!s.ok()) {
    return s;
  }
  auto cleanup_redirect = [&]() {
    if (!redirected.empty()) UnlockPages(id, &redirected);
  };
  auto cancel_hook = [&]() {
    CancelBaseUpdate(txn, BaseUpdateOp::kDelete, separator, leaf_pid);
  };

  // Lock side-pointer neighbors (skip when side pointers are off).
  bool lock_prev = options_.side_pointers != SidePointerMode::kNone &&
                   prev_pid != kInvalidPageId;
  bool lock_next = options_.side_pointers != SidePointerMode::kNone &&
                   next_pid != kInvalidPageId;
  if (lock_prev) {
    s = locks_->Lock(id, PageLock(prev_pid), LockMode::kX);
    if (!s.ok()) {
      cancel_hook();
      cleanup_redirect();
      return s;
    }
  }
  if (lock_next) {
    s = locks_->Lock(id, PageLock(next_pid), LockMode::kX);
    if (!s.ok()) {
      if (lock_prev) locks_->Unlock(id, PageLock(prev_pid));
      cancel_hook();
      cleanup_redirect();
      return s;
    }
  }

  // Point of no return: log, then apply. The unlink records and their page
  // effects (including the cascade) ride in one apply scope so a concurrent
  // checkpoint's redo floor cannot split them.
  BufferPool::ApplyScope apply_scope(bp_);
  LogRecord rec;
  rec.type = LogType::kNodeFree;
  rec.txn_id = txn->id();
  rec.page_id = leaf_pid;
  rec.page_id2 = prev_pid;
  rec.page_id3 = sep_parent;
  rec.key = separator;
  rec.value = EncodePid(next_pid);
  log_->Append(&rec);

  s = bp_->FetchPage(sep_parent, &parent_page);
  if (s.ok()) {
    std::unique_lock<PageLatch> latch(parent_page->latch());
    InternalNode parent(parent_page);
    int pslot = parent.FindChildSlot(leaf_pid);
    if (pslot >= 0) parent.RemoveAt(pslot);
    parent_page->set_page_lsn(rec.lsn);
    bp_->UnpinPage(sep_parent, true);
  }
  if (lock_prev) {
    Page* p;
    if (bp_->FetchPage(prev_pid, &p).ok()) {
      std::unique_lock<PageLatch> latch(p->latch());
      p->SetNext(next_pid);
      p->set_page_lsn(rec.lsn);
      bp_->UnpinPage(prev_pid, true);
    }
    locks_->Unlock(id, PageLock(prev_pid));
  }
  if (lock_next) {
    Page* p;
    if (bp_->FetchPage(next_pid, &p).ok()) {
      std::unique_lock<PageLatch> latch(p->latch());
      p->SetPrev(prev_pid);
      p->set_page_lsn(rec.lsn);
      bp_->UnpinPage(next_pid, true);
    }
    locks_->Unlock(id, PageLock(next_pid));
  }
  bp_->DeletePage(leaf_pid);

  // Cascade: free internal nodes that have become empty (never the root).
  for (size_t i = path.size() - 2; i > 0 && sep_parent == path[i]; --i) {
    Page* node_page;
    if (!bp_->FetchPage(path[i], &node_page).ok()) break;
    int cnt;
    {
      std::shared_lock<PageLatch> latch(node_page->latch());
      InternalNode node(node_page);
      cnt = node.Count();
    }
    bp_->UnpinPage(path[i], false);
    if (cnt > 0) break;

    PageId gp = path[i - 1];
    Page* gp_page;
    if (!bp_->FetchPage(gp, &gp_page).ok()) break;
    std::string gsep;
    int gslot;
    {
      std::shared_lock<PageLatch> latch(gp_page->latch());
      InternalNode gnode(gp_page);
      gslot = gnode.FindChildSlot(path[i]);
      if (gslot >= 0) gsep = gnode.KeyAt(gslot).ToString();
    }
    bp_->UnpinPage(gp, false);
    if (gslot < 0) break;

    LogRecord frec;
    frec.type = LogType::kNodeFree;
    frec.txn_id = txn->id();
    frec.page_id = path[i];
    frec.page_id3 = gp;
    frec.key = gsep;
    frec.value = EncodePid(kInvalidPageId);
    frec.page_id2 = kInvalidPageId;
    log_->Append(&frec);

    if (bp_->FetchPage(gp, &gp_page).ok()) {
      std::unique_lock<PageLatch> latch(gp_page->latch());
      InternalNode gnode(gp_page);
      int s2 = gnode.FindChildSlot(path[i]);
      if (s2 >= 0) gnode.RemoveAt(s2);
      gp_page->set_page_lsn(frec.lsn);
      bp_->UnpinPage(gp, true);
    }
    bp_->DeletePage(path[i]);
    sep_parent = gp;
  }

  cleanup_redirect();
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Reads
// ---------------------------------------------------------------------------

bool BTree::OptimisticDescend(const Slice& key, OptimisticDescent* out) {
  uint64_t inc = incarnation_.load();
  PageId cur = root_.load();
  int cur_slot = 0;
  int parent_slot = -1;
  // Bounded well past any real height: a torn routing chain must not loop.
  for (int depth = 0; depth < 20; ++depth) {
    Page* frame = bp_->FindResident(cur);
    if (frame == nullptr) return false;  // not resident: S-lock path faults it
    OptimisticPageGuard& g = out->slots[cur_slot];
    if (!g.Capture(frame, cur)) return false;
    // Mark check BEFORE parent revalidation: a zero mark here means any
    // S-incompatible page lock on `cur` — and therefore any structure
    // modification that touched it — was fully released (parent updated,
    // root_ stored) before this load, so a stale parent image cannot pass
    // the revalidation below. A post-modification parent routes correctly.
    if (locks_->PageSharedReadBlocked(cur)) return false;
    if (parent_slot < 0) {
      // Root level: a root split stores root_ before its X path locks
      // release, so the mark check alone can miss it. Re-check the pointer.
      if (root_.load() != cur) return false;
    } else if (!out->slots[parent_slot].Revalidate()) {
      return false;
    }
    Page* img = g.page();
    if (img->type() == PageType::kLeaf) {
      if (out->base_slot < 0) return false;  // routed here without a base?
      out->leaf_slot = cur_slot;
      out->leaf_pid = cur;
      out->incarnation = inc;
      // Step-aside switch staleness: under §7.4 the new tree can absorb
      // base updates before the old tree drains, so a descent that started
      // on the old root may reach a leaf whose keys moved. Same re-check
      // the locked Get performs after its descent.
      return incarnation_.load() == inc;
    }
    if (img->type() != PageType::kInternal) return false;  // recycled frame
    InternalNode node(img);
    if (node.Count() <= 0) return false;
    int idx = node.FindChild(key);
    PageId child = node.ChildAt(idx);
    if (child == kInvalidPageId || child == cur) return false;
    if (img->level() == 1) {
      out->base_slot = cur_slot;
      out->base_pid = cur;
      out->leaf_separator = node.KeyAt(idx).ToString();
    }
    parent_slot = cur_slot;
    cur_slot = 1 - cur_slot;
    cur = child;
  }
  return false;
}

bool BTree::TryGetOptimistic(const Slice& key, std::string* value,
                             bool* found) {
  for (int attempt = 0; attempt < options_.optimistic_restarts; ++attempt) {
    OptimisticDescent d;
    if (!OptimisticDescend(key, &d)) continue;
    LeafNode ln(d.leaf_image());
    bool exact;
    int pos = ln.LowerBound(key, &exact);
    if (exact) *value = ln.ValueAt(pos).ToString();
    *found = exact;
    opt_gets_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  opt_fallbacks_.fetch_add(1, std::memory_order_relaxed);
  return false;
}

Status BTree::Get(Transaction* txn, const Slice& key, std::string* value) {
  bool ephemeral = (txn == nullptr);
  if (ephemeral && options_.optimistic_reads) {
    // Latch-free fast path for non-transactional reads. Transactional Gets
    // keep the locked path: their page S locks are retained to commit for
    // repeatable reads, which an unlocked image cannot provide.
    bool found = false;
    if (TryGetOptimistic(key, value, &found)) {
      return found ? Status::OK() : Status::NotFound("key not found");
    }
  }
  TxnId id = ephemeral ? NewEphemeralId() : txn->id();

  uint64_t inc = incarnation_.load();
  Status s = locks_->Lock(id, TreeLock(inc), LockMode::kIS);
  if (!s.ok()) return s;
  if (inc != incarnation_.load()) {
    // The switch completed between the read and the lock: retarget.
    locks_->Unlock(id, TreeLock(inc));
    inc = incarnation_.load();
    s = locks_->Lock(id, TreeLock(inc), LockMode::kIS);
    if (!s.ok()) return s;
  }
  auto cleanup_tree = [&]() {
    if (ephemeral) locks_->Unlock(id, TreeLock(inc));
  };

  for (int attempt = 0; attempt < options_.max_retries; ++attempt) {
    uint64_t seen = incarnation_.load();
    DescentResult r;
    s = FindLeaf(id, key, LockMode::kS, /*keep_base_lock=*/false, &r);
    if (!s.ok()) {
      cleanup_tree();
      return s;
    }
    if (incarnation_.load() != seen) {
      // The switch flipped the root mid-descent. Under the step-aside
      // protocol new-tree base updates can land before the old tree has
      // drained, so a descent routed through old internal pages may have
      // reached a leaf whose keys were since split off to the right. The
      // leaf lock is granted, so nothing can move now — but the routing
      // may already be stale; re-descend via the (new) root.
      locks_->Unlock(id, PageLock(r.leaf));
      continue;
    }
    Page* leaf_page;
    s = bp_->FetchPage(r.leaf, &leaf_page);
    if (!s.ok()) {
      locks_->Unlock(id, PageLock(r.leaf));
      cleanup_tree();
      return s;
    }
    bool exact;
    {
      std::shared_lock<PageLatch> latch(leaf_page->latch());
      LeafNode ln(leaf_page);
      int pos = ln.LowerBound(key, &exact);
      if (exact) *value = ln.ValueAt(pos).ToString();
    }
    bp_->UnpinPage(r.leaf, false);
    if (ephemeral) {
      locks_->Unlock(id, PageLock(r.leaf));
      cleanup_tree();
    }
    return exact ? Status::OK() : Status::NotFound("key not found");
  }
  cleanup_tree();
  return Status::Busy("get retries exhausted");
}

Status BTree::Scan(Transaction* txn, const Slice& lo, const Slice& hi,
                   const std::function<bool(const Slice&, const Slice&)>& cb) {
  BTreeIterator it(this, txn);
  Status s = it.Seek(lo);
  if (!s.ok()) return s;
  while (it.Valid()) {
    if (!hi.empty() && it.key().compare(hi) > 0) break;
    if (!cb(it.key(), it.value())) break;
    s = it.Next();
    if (!s.ok()) return s;
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Reorganizer integration
// ---------------------------------------------------------------------------

Status BTree::LockBasePage(TxnId locker, const Slice& key, LockMode mode,
                           PageId* base_pid, PageGuard* guard) {
  for (int attempt = 0; attempt < options_.max_retries; ++attempt) {
    PageId cur = root_.load();
    Status s = locks_->Lock(locker, PageLock(cur), LockMode::kS);
    if (!s.ok()) return s;
    if (cur != root_.load()) {
      locks_->Unlock(locker, PageLock(cur));
      continue;
    }
    while (true) {
      Page* page;
      s = bp_->FetchPage(cur, &page);
      if (!s.ok()) {
        locks_->Unlock(locker, PageLock(cur));
        return s;
      }
      if (page->level() == 1) {
        // Convert the S lock to the requested mode (R for the reorganizer,
        // X for the tree builder's catch-up, etc.).
        if (mode != LockMode::kS) {
          s = locks_->Lock(locker, PageLock(cur), mode);
          if (!s.ok()) {
            bp_->UnpinPage(cur, false);
            locks_->Unlock(locker, PageLock(cur));
            return s;
          }
        }
        *base_pid = cur;
        *guard = PageGuard(bp_, page);
        return Status::OK();
      }
      PageId child;
      {
        std::shared_lock<PageLatch> latch(page->latch());
        InternalNode node(page);
        child = node.ChildAt(node.FindChild(key));
      }
      bp_->UnpinPage(cur, false);
      s = locks_->Lock(locker, PageLock(child), LockMode::kS);
      if (!s.ok()) {
        locks_->Unlock(locker, PageLock(cur));
        return s;
      }
      locks_->Unlock(locker, PageLock(cur));
      cur = child;
    }
  }
  return Status::Busy("base-page descent retries exhausted");
}

Status BTree::FirstBasePage(TxnId locker, std::string* low_mark,
                            PageId* base_pid) {
  // Follow the leftmost pointers (§7.1).
  PageId cur = root_.load();
  Status s = locks_->Lock(locker, PageLock(cur), LockMode::kS);
  if (!s.ok()) return s;
  while (true) {
    Page* page;
    s = bp_->FetchPage(cur, &page);
    if (!s.ok()) {
      locks_->Unlock(locker, PageLock(cur));
      return s;
    }
    uint8_t level = page->level();
    if (level == 1) {
      InternalNode node(page);
      *low_mark = node.LowMark().ToString();
      *base_pid = cur;
      bp_->UnpinPage(cur, false);
      locks_->Unlock(locker, PageLock(cur));
      return Status::OK();
    }
    PageId child;
    {
      std::shared_lock<PageLatch> latch(page->latch());
      InternalNode node(page);
      child = node.ChildAt(0);
    }
    bp_->UnpinPage(cur, false);
    s = locks_->Lock(locker, PageLock(child), LockMode::kS);
    if (!s.ok()) {
      locks_->Unlock(locker, PageLock(cur));
      return s;
    }
    locks_->Unlock(locker, PageLock(cur));
    cur = child;
  }
}

Status BTree::NextBasePage(TxnId locker, const Slice& key,
                           std::string* low_mark, PageId* base_pid) {
  // Height-2 special case: the root is the only base page.
  PageId root_pid = root_.load();
  Status s = locks_->Lock(locker, PageLock(root_pid), LockMode::kS);
  if (!s.ok()) return s;
  Page* root_page;
  s = bp_->FetchPage(root_pid, &root_page);
  if (!s.ok()) {
    locks_->Unlock(locker, PageLock(root_pid));
    return s;
  }
  if (root_page->level() == 1) {
    bp_->UnpinPage(root_pid, false);
    locks_->Unlock(locker, PageLock(root_pid));
    return Status::NotFound("single base page");
  }
  bp_->UnpinPage(root_pid, false);
  s = NextBaseIn(locker, root_pid, key, low_mark, base_pid);
  locks_->Unlock(locker, PageLock(root_pid));
  return s;
}

Status BTree::NextBaseIn(TxnId locker, PageId node_pid, const Slice& key,
                         std::string* low_mark, PageId* base_pid) {
  // Precondition: node_pid is S-locked by locker and has level >= 2.
  Page* page;
  Status s = bp_->FetchPage(node_pid, &page);
  if (!s.ok()) return s;
  int count;
  uint8_t level;
  {
    std::shared_lock<PageLatch> latch(page->latch());
    InternalNode node(page);
    count = node.Count();
    level = page->level();
  }
  int start;
  {
    std::shared_lock<PageLatch> latch(page->latch());
    InternalNode node(page);
    start = node.FindChild(key);
  }
  for (int i = start; i < count; ++i) {
    Slice sep;
    PageId child;
    {
      std::shared_lock<PageLatch> latch(page->latch());
      InternalNode node(page);
      sep = node.KeyAt(i);
      child = node.ChildAt(i);
      if (level == 2) {
        if (sep.compare(key) > 0) {
          *low_mark = sep.ToString();
          *base_pid = child;
          bp_->UnpinPage(node_pid, false);
          return Status::OK();
        }
        continue;
      }
    }
    // level > 2: recurse.
    s = locks_->Lock(locker, PageLock(child), LockMode::kS);
    if (!s.ok()) {
      bp_->UnpinPage(node_pid, false);
      return s;
    }
    s = NextBaseIn(locker, child, key, low_mark, base_pid);
    locks_->Unlock(locker, PageLock(child));
    if (s.ok()) {
      bp_->UnpinPage(node_pid, false);
      return s;
    }
    if (!s.IsNotFound()) {
      bp_->UnpinPage(node_pid, false);
      return s;
    }
  }
  bp_->UnpinPage(node_pid, false);
  return Status::NotFound("no next base page");
}

Status BTree::SwitchRoot(PageId new_root, uint8_t new_height,
                         uint64_t new_incarnation) {
  // Apply scope: the switch record and the in-memory root flip must land on
  // the same side of a concurrent checkpoint's redo floor (the image
  // serializes the root it sees; a record below the floor is never
  // replayed).
  BufferPool::ApplyScope apply_scope(bp_);
  LogRecord rec;
  rec.type = LogType::kTreeSwitch;
  rec.page_id = new_root;
  rec.page_id2 = root_.load();
  rec.flags = new_height;
  std::string inc;
  PutFixed64(&inc, new_incarnation);
  rec.value = inc;
  Status s = log_->AppendAndFlush(&rec);
  if (!s.ok()) return s;
  root_.store(new_root);
  height_.store(new_height);
  incarnation_.store(new_incarnation);
  return Status::OK();
}

Status BTree::CollectInternalPages(PageId from_root,
                                   std::vector<PageId>* pages) {
  pages->clear();
  std::vector<PageId> stack{from_root};
  while (!stack.empty()) {
    PageId cur = stack.back();
    stack.pop_back();
    Page* page;
    Status s = bp_->FetchPage(cur, &page);
    if (!s.ok()) return s;
    if (page->type() != PageType::kInternal) {
      bp_->UnpinPage(cur, false);
      continue;
    }
    pages->push_back(cur);
    if (page->level() > 1) {
      InternalNode node(page);
      for (int i = 0; i < node.Count(); ++i) stack.push_back(node.ChildAt(i));
    }
    bp_->UnpinPage(cur, false);
  }
  return Status::OK();
}

Status BTree::CollectBasePages(std::vector<PageId>* bases) {
  bases->clear();
  TxnId id = NewEphemeralId();
  std::string lm;
  PageId pid;
  Status s = FirstBasePage(id, &lm, &pid);
  if (!s.ok()) return s;
  bases->push_back(pid);
  while (true) {
    s = NextBasePage(id, lm, &lm, &pid);
    if (s.IsNotFound()) return Status::OK();
    if (!s.ok()) return s;
    bases->push_back(pid);
  }
}

Status BTree::CollectLeaves(std::vector<PageId>* leaves) {
  leaves->clear();
  std::vector<PageId> bases;
  Status s = CollectBasePages(&bases);
  if (!s.ok()) return s;
  for (PageId b : bases) {
    Page* page;
    s = bp_->FetchPage(b, &page);
    if (!s.ok()) return s;
    InternalNode node(page);
    for (int i = 0; i < node.Count(); ++i) leaves->push_back(node.ChildAt(i));
    bp_->UnpinPage(b, false);
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Introspection
// ---------------------------------------------------------------------------

Status BTree::ComputeStats(BTreeStats* stats) {
  *stats = BTreeStats{};
  stats->height = height_.load();

  std::vector<PageId> internals;
  Status s = CollectInternalPages(root_.load(), &internals);
  if (!s.ok()) return s;
  stats->internal_pages = internals.size();
  double ifill = 0;
  for (PageId pid : internals) {
    Page* page;
    s = bp_->FetchPage(pid, &page);
    if (!s.ok()) return s;
    InternalNode node(page);
    ifill += node.FillFactor();
    if (page->level() == 1) ++stats->base_pages;
    bp_->UnpinPage(pid, false);
  }
  if (!internals.empty()) {
    stats->avg_internal_fill = ifill / static_cast<double>(internals.size());
  }

  std::vector<PageId> leaves;
  s = CollectLeaves(&leaves);
  if (!s.ok()) return s;
  stats->leaf_pages = leaves.size();
  double lfill = 0;
  for (size_t i = 0; i < leaves.size(); ++i) {
    Page* page;
    s = bp_->FetchPage(leaves[i], &page);
    if (!s.ok()) return s;
    LeafNode ln(page);
    stats->records += ln.Count();
    lfill += ln.FillFactor();
    bp_->UnpinPage(leaves[i], false);
    if (i > 0 && leaves[i] == leaves[i - 1] + 1) {
      ++stats->leaves_in_disk_order;
    }
  }
  if (!leaves.empty()) {
    stats->avg_leaf_fill = lfill / static_cast<double>(leaves.size());
  }
  return Status::OK();
}

Status BTree::CheckConsistency() {
  return CheckSubtree(root_.load(), Slice(), Slice(),
                      static_cast<uint8_t>(height_.load() - 1), true);
}

Status BTree::CheckSubtree(PageId pid, const Slice& lo, const Slice& hi,
                           uint8_t expect_level, bool is_root) {
  Page* page;
  Status s = bp_->FetchPage(pid, &page);
  if (!s.ok()) return s;
  PageGuard guard(bp_, page);

  if (page->header_page_id() != pid) {
    return Status::Corruption("page id mismatch");
  }
  if (page->level() != expect_level) {
    return Status::Corruption("level mismatch");
  }
  if (expect_level == 0) {
    LeafNode ln(page);
    for (int i = 0; i < ln.Count(); ++i) {
      Slice k = ln.KeyAt(i);
      if (i > 0 && ln.KeyAt(i - 1).compare(k) >= 0) {
        return Status::Corruption("leaf keys out of order in page " +
                                  std::to_string(pid));
      }
      if (k.compare(lo) < 0) {
        return Status::Corruption(
            "leaf key below lo in page " + std::to_string(pid) + " key=" +
            std::to_string(DecodeU64Key(k)) + " lo=" +
            std::to_string(DecodeU64Key(lo)));
      }
      if (!hi.empty() && k.compare(hi) >= 0) {
        return Status::Corruption(
            "leaf key above hi in page " + std::to_string(pid) + " key=" +
            std::to_string(DecodeU64Key(k)) + " hi=" +
            std::to_string(DecodeU64Key(hi)));
      }
    }
    return Status::OK();
  }

  InternalNode node(page);
  if (node.Count() < 1) {
    return Status::Corruption("empty internal node");
  }
  for (int i = 0; i < node.Count(); ++i) {
    Slice k = node.KeyAt(i);
    if (i > 0 && node.KeyAt(i - 1).compare(k) >= 0) {
      return Status::Corruption("separators out of order");
    }
    if (!(is_root && i == 0)) {
      if (k.compare(lo) < 0) return Status::Corruption("separator below lo");
      if (!hi.empty() && k.compare(hi) >= 0) {
        return Status::Corruption("separator above hi");
      }
    }
  }
  for (int i = 0; i < node.Count(); ++i) {
    // Slot 0's separator is advisory: FindChild clamps keys below it into
    // child 0, so child 0's effective lower bound is this node's own `lo`
    // (separators can only rise during reorganization MODIFYs).
    std::string child_lo =
        (i == 0) ? lo.ToString() : node.KeyAt(i).ToString();
    std::string child_hi =
        (i + 1 < node.Count()) ? node.KeyAt(i + 1).ToString() : hi.ToString();
    s = CheckSubtree(node.ChildAt(i), child_lo, child_hi,
                     static_cast<uint8_t>(expect_level - 1), false);
    if (!s.ok()) return s;
  }
  return Status::OK();
}


// ---------------------------------------------------------------------------
// Base-level application (pass-3 catch-up) and logical undo
// ---------------------------------------------------------------------------

Status BTree::BaseApply(Transaction* txn, BaseUpdateOp op, const Slice& key,
                        PageId leaf, bool* already_applied) {
  TxnId id = txn->id();
  for (int attempt = 0; attempt < options_.max_retries; ++attempt) {
    std::vector<PageId> path;
    Status s = FindPathPessimistic(id, key, op == BaseUpdateOp::kInsert,
                                   InternalNode::CellSize(key) + 16,
                                   /*stop_level=*/1, &path);
    if (s.IsDeadlock() || s.IsBusy()) continue;  // reorganizer lost; retry
    if (!s.ok()) return s;
    PageId base = path.back();

    if (op == BaseUpdateOp::kInsert) {
      // Duplicate tolerance: under the base page's X lock, an exact
      // separator match means the entry was already applied (a step-aside
      // re-drain, or the updater's own direct application). Verify and
      // return instead of letting the node-level insert fail.
      Page* base_page;
      s = bp_->FetchPage(base, &base_page);
      if (!s.ok()) {
        UnlockPages(id, &path);
        return s;
      }
      bool present;
      {
        std::shared_lock<PageLatch> latch(base_page->latch());
        InternalNode node(base_page);
        node.LowerBound(key, &present);
      }
      bp_->UnpinPage(base, false);
      if (present) {
        UnlockPages(id, &path);
        if (already_applied) *already_applied = true;
        return Status::OK();
      }

      PageId target = base;
      std::vector<PageId> extra;
      s = EnsureSeparatorRoom(txn, path, path.size() - 1, key, &target,
                              &extra);
      if (!s.ok()) {
        UnlockPages(id, &extra);
        UnlockPages(id, &path);
        if (s.IsBusy() || s.IsDeadlock()) continue;
        return s;
      }
      s = InsertSeparatorInto(txn, target, key, leaf);
      UnlockPages(id, &extra);
      UnlockPages(id, &path);
      return s;
    }

    // Removal.
    Page* page;
    s = bp_->FetchPage(base, &page);
    if (!s.ok()) {
      UnlockPages(id, &path);
      return s;
    }
    Status rs = Status::NotFound("separator not found");
    {
      BufferPool::ApplyScope apply_scope(bp_);
      {
        std::unique_lock<PageLatch> latch(page->latch());
        InternalNode node(page);
        bool exact;
        int pos = node.LowerBound(key, &exact);
        if (exact) {
          node.RemoveAt(pos);
          LogRecord rec;
          rec.type = LogType::kDelete;
          rec.flags = kInternalCell;
          rec.txn_id = txn->id();
          rec.page_id = base;
          rec.key = key.ToString();
          log_->Append(&rec);
          page->set_page_lsn(rec.lsn);
          rs = Status::OK();
        }
      }
      bp_->UnpinPage(base, rs.ok());
    }
    UnlockPages(id, &path);
    return rs;
  }
  return Status::Busy("base apply retries exhausted");
}

Status BTree::UndoRecordOp(Transaction* txn, const LogRecord& original) {
  TxnId id = txn->id();
  const Slice key(original.key);
  if (original.type != LogType::kInsert) {
    // The undo may re-insert `key`; keep separators exact first.
    Status s = LowerSeparatorIfNeeded(txn, key);
    if (!s.ok()) return s;
  }
  for (int attempt = 0; attempt < options_.max_retries; ++attempt) {
    // Undo-insert removes; undo-delete re-inserts; undo-update restores.
    bool is_undo_of_insert = original.type == LogType::kInsert;

    std::vector<PageId> path;
    size_t need = is_undo_of_insert
                      ? 0
                      : LeafNode::CellSize(key, original.value);
    Status s = FindLeafPessimistic(id, key, /*for_insert=*/!is_undo_of_insert,
                                   need, &path);
    if (!s.ok()) return s;
    PageId leaf_pid = path.back();

    Page* leaf_page;
    s = bp_->FetchPage(leaf_pid, &leaf_page);
    if (!s.ok()) {
      UnlockPages(id, &path);
      return s;
    }
    bool need_split = false;
    Status rs;
    // Scoped so the apply scope ends before the (blocking) split retry.
    std::optional<BufferPool::ApplyScope> apply_scope;
    apply_scope.emplace(bp_);
    {
      std::unique_lock<PageLatch> latch(leaf_page->latch());
      LeafNode ln(leaf_page);
      bool exact;
      int pos = ln.LowerBound(key, &exact);
      LogRecord clr;
      clr.type = LogType::kClr;
      clr.txn_id = txn->id();
      clr.prev_lsn = txn->last_lsn();
      clr.lsn2 = original.prev_lsn;  // undo-next
      clr.page_id = leaf_pid;
      clr.key = original.key;
      if (original.type == LogType::kInsert) {
        if (exact) ln.RemoveAt(pos);
        rs = Status::OK();
      } else if (original.type == LogType::kDelete) {
        if (!exact) {
          if (ln.FreeSpace() < LeafNode::CellSize(key, original.value)) {
            need_split = true;
          } else {
            rs = ln.Insert(key, original.value);
            clr.flags = kClrInsert;
            clr.value = original.value;
          }
        } else {
          rs = Status::OK();  // already present (idempotent)
        }
      } else {  // kUpdate: restore old value
        if (exact) {
          rs = ln.SetValueAt(pos, original.value);
          clr.flags = kClrInsert;
          clr.value = original.value;
        } else {
          rs = ln.Insert(key, original.value);
          clr.flags = kClrInsert;
          clr.value = original.value;
        }
      }
      if (!need_split && rs.ok()) {
        log_->Append(&clr);
        txn->set_last_lsn(clr.lsn);
        leaf_page->set_page_lsn(clr.lsn);
      }
    }
    bp_->UnpinPage(leaf_pid, rs.ok() && !need_split);
    apply_scope.reset();
    if (need_split) {
      s = SplitLeaf(txn, path, key);
      UnlockPages(id, &path);
      if (!s.ok() && !s.IsBusy() && !s.IsBackoff() && !s.IsDeadlock()) {
        return s;
      }
      continue;  // retry: the key's leaf now has room
    }
    UnlockPages(id, &path);
    return rs;
  }
  return Status::Busy("undo retries exhausted");
}

// ---------------------------------------------------------------------------
// Redo
// ---------------------------------------------------------------------------

namespace {

// Fetch + LSN-guard + apply + stamp, in one helper.
Status RedoOnPage(BufferPool* bp, PageId pid, Lsn lsn,
                  const std::function<void(Page*)>& apply) {
  if (pid == kInvalidPageId) return Status::OK();
  Page* page;
  Status s = bp->FetchPage(pid, &page);
  if (!s.ok()) return s;
  bool applied = false;
  if (page->page_lsn() < lsn) {
    apply(page);
    page->set_page_lsn(lsn);
    applied = true;
  }
  bp->UnpinPage(pid, applied);
  return Status::OK();
}

}  // namespace

Status BTree::RedoApply(BufferPool* bp, const LogRecord& rec) {
  switch (rec.type) {
    case LogType::kInsert:
      return RedoOnPage(bp, rec.page_id, rec.lsn, [&](Page* p) {
        if (rec.flags & kInternalCell) {
          InternalNode node(p);
          node.Insert(rec.key, DecodePid(rec.value));
        } else {
          LeafNode ln(p);
          ln.Insert(rec.key, rec.value);
        }
      });
    case LogType::kDelete:
      return RedoOnPage(bp, rec.page_id, rec.lsn, [&](Page* p) {
        if (rec.flags & kInternalCell) {
          InternalNode node(p);
          bool exact;
          int pos = node.LowerBound(rec.key, &exact);
          if (exact) node.RemoveAt(pos);
        } else {
          LeafNode ln(p);
          bool exact;
          int pos = ln.LowerBound(rec.key, &exact);
          if (exact) ln.RemoveAt(pos);
        }
      });
    case LogType::kUpdate:
      return RedoOnPage(bp, rec.page_id, rec.lsn, [&](Page* p) {
        LeafNode ln(p);
        bool exact;
        int pos = ln.LowerBound(rec.key, &exact);
        if (exact) ln.SetValueAt(pos, rec.value2);
      });
    case LogType::kClr:
      return RedoOnPage(bp, rec.page_id, rec.lsn, [&](Page* p) {
        LeafNode ln(p);
        bool exact;
        int pos = ln.LowerBound(rec.key, &exact);
        if (rec.flags & kClrInsert) {
          if (!exact) ln.Insert(rec.key, rec.value);
        } else {
          if (exact) ln.RemoveAt(pos);
        }
      });
    case LogType::kFormatPage:
      return RedoOnPage(bp, rec.page_id, rec.lsn, [&](Page* p) {
        if (static_cast<PageType>(rec.unit_type) == PageType::kLeaf) {
          LeafNode::Format(p, rec.page_id);
        } else {
          InternalNode::Format(p, rec.page_id, rec.flags, rec.key);
        }
      });
    case LogType::kLinkPage:
      return RedoOnPage(bp, rec.page_id, rec.lsn, [&](Page* p) {
        p->SetPrev(rec.page_id2);
        p->SetNext(rec.page_id3);
      });
    case LogType::kLeafSplit: {
      PageId old_next = DecodePid(rec.value);
      auto mode = static_cast<SidePointerMode>(rec.flags);
      Status s = RedoOnPage(bp, rec.page_id, rec.lsn, [&](Page* p) {
        LeafNode ln(p);
        bool exact;
        int pos = ln.LowerBound(rec.key, &exact);
        while (ln.Count() > pos) ln.RemoveAt(ln.Count() - 1);
        if (mode != SidePointerMode::kNone) p->SetNext(rec.page_id2);
      });
      if (!s.ok()) return s;
      s = RedoOnPage(bp, rec.page_id2, rec.lsn, [&](Page* p) {
        LeafNode::Format(p, rec.page_id2);
        SlottedPage sp(p);
        std::vector<std::string> cells;
        UnpackCells(rec.payload, &cells);
        for (size_t i = 0; i < cells.size(); ++i) {
          sp.InsertCell(static_cast<int>(i), cells[i]);
        }
        if (mode != SidePointerMode::kNone) {
          p->SetNext(old_next);
          if (mode == SidePointerMode::kTwoWay) p->SetPrev(rec.page_id);
        }
      });
      if (!s.ok()) return s;
      if (mode == SidePointerMode::kTwoWay && old_next != kInvalidPageId) {
        s = RedoOnPage(bp, old_next, rec.lsn,
                       [&](Page* p) { p->SetPrev(rec.page_id2); });
        if (!s.ok()) return s;
      }
      // The separator insert into the parent is its own kInsert record.
      return Status::OK();
    }
    case LogType::kInternalSplit: {
      Status s = RedoOnPage(bp, rec.page_id, rec.lsn, [&](Page* p) {
        InternalNode node(p);
        bool exact;
        int pos = node.LowerBound(rec.key, &exact);
        while (node.Count() > pos) node.RemoveAt(node.Count() - 1);
      });
      if (!s.ok()) return s;
      s = RedoOnPage(bp, rec.page_id2, rec.lsn, [&](Page* p) {
        InternalNode::Format(p, rec.page_id2, rec.flags, rec.key);
        SlottedPage sp(p);
        std::vector<std::string> cells;
        UnpackCells(rec.payload, &cells);
        for (size_t i = 0; i < cells.size(); ++i) {
          sp.InsertCell(static_cast<int>(i), cells[i]);
        }
      });
      if (!s.ok()) return s;
      if (rec.page_id3 == kInvalidPageId) {
        PageId new_root = DecodePid(rec.value2);
        s = RedoOnPage(bp, new_root, rec.lsn, [&](Page* p) {
          InternalNode::Format(p, new_root,
                               static_cast<uint8_t>(rec.flags + 1), Slice());
          InternalNode r(p);
          r.Insert(Slice(), rec.page_id);
          r.Insert(rec.key, rec.page_id2);
        });
        if (!s.ok()) return s;
      }
      return Status::OK();
    }
    case LogType::kNodeFree: {
      PageId next_pid = DecodePid(rec.value);
      Status s = RedoOnPage(bp, rec.page_id3, rec.lsn, [&](Page* p) {
        InternalNode node(p);
        int slot = node.FindChildSlot(rec.page_id);
        if (slot >= 0) node.RemoveAt(slot);
      });
      if (!s.ok()) return s;
      if (rec.page_id2 != kInvalidPageId) {
        s = RedoOnPage(bp, rec.page_id2, rec.lsn,
                       [&](Page* p) { p->SetNext(next_pid); });
        if (!s.ok()) return s;
      }
      if (next_pid != kInvalidPageId) {
        s = RedoOnPage(bp, next_pid, rec.lsn,
                       [&](Page* p) { p->SetPrev(rec.page_id2); });
        if (!s.ok()) return s;
      }
      return Status::OK();
    }
    default:
      return Status::OK();  // handled elsewhere (recovery manager)
  }
}

}  // namespace soreorg
