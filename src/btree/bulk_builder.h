// Bottom-up B+-tree construction from sorted input (Salzberg '88, ch. 5 §5):
// records are appended to the current page until it reaches the target fill
// factor, then a fresh page is opened and an entry for it is added to the
// level above — no splits ever happen.
//
// Two layers:
//   * InternalBuilder — builds the internal levels from a sorted stream of
//     (separator, child) entries. This is exactly what pass 3 of the
//     reorganizer needs: it feeds the base-page contents of the old tree in
//     key order and gets back a new, compact upper tree whose leaves are the
//     *existing* leaf pages. It does no logging: pass-3 durability comes
//     from the stable-point force-writes (§7.3), and the builder reports
//     every page it creates so the caller can force and/or reclaim them.
//   * BulkBuilder — builds a whole tree (leaves + internals) from sorted
//     (key, value) records; used for initial loads and experiment setup.
//     Callers must checkpoint afterwards (the builder does not WAL-log each
//     record).

#ifndef SOREORG_BTREE_BULK_BUILDER_H_
#define SOREORG_BTREE_BULK_BUILDER_H_

#include <functional>
#include <string>
#include <vector>

#include "src/btree/btree.h"

namespace soreorg {

class InternalBuilder {
 public:
  /// internal_fill in (0, 1]: pages are closed once UsedSpace reaches
  /// internal_fill * Capacity.
  InternalBuilder(BufferPool* bp, double internal_fill);

  /// Add the next (separator, child) in strictly increasing separator
  /// order. The very first separator at every level is stored as "" (-inf).
  Status Add(const Slice& separator, PageId child);

  /// Close all open pages and return the root (creating a trivial root base
  /// page when no entry was ever added is an error).
  Status Finish(PageId* root, uint8_t* height);

  /// Every internal page allocated so far, in creation order.
  const std::vector<PageId>& created_pages() const { return created_; }

  /// Pages completed (filled + closed) since the last call; the pass-3
  /// stable-point logic forces these. Clears the pending list.
  std::vector<PageId> TakeCompletedPages();

  /// The currently open page at every level (rightmost spine); these are
  /// the "changed ancestors" a stable point must force (§7.3).
  std::vector<PageId> OpenPages() const;

  /// The open page of the highest level so far (the partial tree's top).
  PageId TopPage() const;

  /// Pass-3 restart (§7.3): rebuild builder state from the durable partial
  /// tree whose top page is `top`. Walks the rightmost spine to recover the
  /// open pages and the leftmost spine to recover each level's first page,
  /// and trims every open page of entries with separator > stable_key
  /// (those were lost with the crash and will be re-read).
  Status RestoreSpine(PageId top, const Slice& stable_key);

  /// Resume-mode add: silently skip separators that already exist in the
  /// open page (idempotent re-reads after restart).
  void set_skip_duplicates(bool b) { skip_duplicates_ = b; }

  /// Called with each freshly allocated page id BEFORE the page is formatted
  /// (and so before its image can ever reach disk); returns the LSN the page
  /// is stamped with. Pass 3 logs its kAllocPage record here: the stamp makes
  /// redo skip old-tree records aimed at a recycled page id, and the buffer
  /// pool's WAL interlock then forces the allocation record durable before
  /// the unlogged page image — careful writing for built pages (§7.3).
  /// Without a logger (initial bulk loads) pages keep LSN 0 and the
  /// follow-up checkpoint is the recovery baseline.
  using AllocLogger = std::function<Status(PageId, Lsn*)>;
  void set_alloc_logger(AllocLogger logger) { alloc_logger_ = std::move(logger); }

 private:
  struct Level {
    PageId open = kInvalidPageId;   // page currently accepting entries
    PageId first = kInvalidPageId;  // first page ever created at this level
  };

  /// Open a fresh page at builder level `level` (tree level `level`+1) with
  /// the given low mark; updates levels_[level].open.
  Status OpenPageAt(size_t level, const Slice& low_mark);
  Status AddAt(size_t level, const Slice& separator, PageId child);
  Status InsertInto(PageId pid, const Slice& separator, PageId child);

  BufferPool* bp_;
  double fill_;
  std::vector<Level> levels_;  // levels_[0] = base-page level (tree level 1)
  std::vector<PageId> created_;
  std::vector<PageId> completed_;
  bool skip_duplicates_ = false;
  AllocLogger alloc_logger_;
};

class BulkBuilder {
 public:
  BulkBuilder(BufferPool* bp, const BTreeOptions& options, double leaf_fill,
              double internal_fill);

  /// Keys must arrive in strictly increasing order.
  Status Add(const Slice& key, const Slice& value);

  Status Finish(PageId* root, uint8_t* height);

  uint64_t leaves_built() const { return leaves_built_; }

 private:
  Status OpenLeaf();
  Status CloseLeaf();

  BufferPool* bp_;
  BTreeOptions options_;
  double leaf_fill_;
  InternalBuilder internal_;

  PageId cur_leaf_ = kInvalidPageId;
  PageId prev_leaf_ = kInvalidPageId;
  std::string cur_first_key_;
  bool any_ = false;
  bool any_after_first_leaf_ = false;
  uint64_t leaves_built_ = 0;
};

}  // namespace soreorg

#endif  // SOREORG_BTREE_BULK_BUILDER_H_
