#include "src/btree/node.h"

#include <cassert>

#include "src/util/coding.h"

namespace soreorg {

namespace {

struct LeafCell {
  Slice key;
  Slice value;
};

bool ParseLeafCell(Slice cell, LeafCell* out) {
  return GetLengthPrefixedSlice(&cell, &out->key) &&
         GetLengthPrefixedSlice(&cell, &out->value);
}

std::string MakeLeafCell(const Slice& key, const Slice& value) {
  std::string cell;
  PutLengthPrefixedSlice(&cell, key);
  PutLengthPrefixedSlice(&cell, value);
  return cell;
}

struct InternalCell {
  Slice key;
  PageId child;
};

bool ParseInternalCell(Slice cell, InternalCell* out) {
  if (!GetLengthPrefixedSlice(&cell, &out->key)) return false;
  uint32_t child;
  if (!GetFixed32(&cell, &child)) return false;
  out->child = child;
  return true;
}

std::string MakeInternalCell(const Slice& key, PageId child) {
  std::string cell;
  PutLengthPrefixedSlice(&cell, key);
  PutFixed32(&cell, child);
  return cell;
}

}  // namespace

// ---------------------------------------------------------------------------
// LeafNode
// ---------------------------------------------------------------------------

void LeafNode::Format(Page* page, PageId page_id) {
  page->Reset();
  page->set_page_id(page_id);
  page->SetHeaderPageId(page_id);
  page->set_type(PageType::kLeaf);
  page->set_level(0);
  SlottedPage sp(page);
  sp.Init();
}

Slice LeafNode::KeyAt(int i) const {
  LeafCell c;
  bool ok = ParseLeafCell(sp_.GetCell(i), &c);
  assert(ok);
  (void)ok;
  return c.key;
}

Slice LeafNode::ValueAt(int i) const {
  LeafCell c;
  bool ok = ParseLeafCell(sp_.GetCell(i), &c);
  assert(ok);
  (void)ok;
  return c.value;
}

int LeafNode::LowerBound(const Slice& key, bool* exact) const {
  int lo = 0, hi = Count();
  *exact = false;
  while (lo < hi) {
    int mid = lo + (hi - lo) / 2;
    int cmp = KeyAt(mid).compare(key);
    if (cmp < 0) {
      lo = mid + 1;
    } else {
      if (cmp == 0) *exact = true;
      hi = mid;
    }
  }
  return lo;
}

Status LeafNode::Insert(const Slice& key, const Slice& value) {
  bool exact;
  int pos = LowerBound(key, &exact);
  if (exact) return Status::InvalidArgument("duplicate key");
  return sp_.InsertCell(pos, MakeLeafCell(key, value));
}

Status LeafNode::SetValueAt(int i, const Slice& value) {
  return sp_.SetCell(i, MakeLeafCell(KeyAt(i).ToString(), value));
}

void LeafNode::RemoveAt(int i) { sp_.RemoveCell(i); }

size_t LeafNode::CellSize(const Slice& key, const Slice& value) {
  return MakeLeafCell(key, value).size() + SlottedPage::kCellLenPrefix +
         2 /*slot*/;
}

// ---------------------------------------------------------------------------
// InternalNode
// ---------------------------------------------------------------------------

void InternalNode::Format(Page* page, PageId page_id, uint8_t level,
                          const Slice& low_mark) {
  page->Reset();
  page->set_page_id(page_id);
  page->SetHeaderPageId(page_id);
  page->set_type(PageType::kInternal);
  page->set_level(level);
  SlottedPage sp(page);
  sp.Init(low_mark);
}

Slice InternalNode::KeyAt(int i) const {
  InternalCell c;
  bool ok = ParseInternalCell(sp_.GetCell(i), &c);
  assert(ok);
  (void)ok;
  return c.key;
}

PageId InternalNode::ChildAt(int i) const {
  InternalCell c;
  bool ok = ParseInternalCell(sp_.GetCell(i), &c);
  assert(ok);
  (void)ok;
  return c.child;
}

int InternalNode::FindChild(const Slice& key) const {
  assert(Count() > 0);
  // Largest i with KeyAt(i) <= key.
  int lo = 0, hi = Count() - 1, ans = 0;
  while (lo <= hi) {
    int mid = lo + (hi - lo) / 2;
    if (KeyAt(mid).compare(key) <= 0) {
      ans = mid;
      lo = mid + 1;
    } else {
      hi = mid - 1;
    }
  }
  return ans;
}

int InternalNode::LowerBound(const Slice& key, bool* exact) const {
  int lo = 0, hi = Count();
  *exact = false;
  while (lo < hi) {
    int mid = lo + (hi - lo) / 2;
    int cmp = KeyAt(mid).compare(key);
    if (cmp < 0) {
      lo = mid + 1;
    } else {
      if (cmp == 0) *exact = true;
      hi = mid;
    }
  }
  return lo;
}

int InternalNode::FindChildSlot(PageId child) const {
  for (int i = 0; i < Count(); ++i) {
    if (ChildAt(i) == child) return i;
  }
  return -1;
}

Status InternalNode::Insert(const Slice& key, PageId child) {
  bool exact;
  int pos = LowerBound(key, &exact);
  if (exact) return Status::InvalidArgument("duplicate separator");
  return sp_.InsertCell(pos, MakeInternalCell(key, child));
}

Status InternalNode::SetKeyAt(int i, const Slice& key) {
  PageId child = ChildAt(i);
  sp_.RemoveCell(i);
  // Re-insert at the sorted position for the new key (it may move).
  bool exact;
  int pos = LowerBound(key, &exact);
  if (exact) return Status::InvalidArgument("duplicate separator");
  return sp_.InsertCell(pos, MakeInternalCell(key, child));
}

void InternalNode::SetChildAt(int i, PageId child) {
  std::string cell = MakeInternalCell(KeyAt(i).ToString(), child);
  sp_.SetCell(i, cell);
}

void InternalNode::RemoveAt(int i) { sp_.RemoveCell(i); }

size_t InternalNode::CellSize(const Slice& key) {
  return MakeInternalCell(key, 0).size() + SlottedPage::kCellLenPrefix +
         2 /*slot*/;
}

std::string PackCellRange(const SlottedPage& sp, int from, int to) {
  std::string out;
  PutVarint32(&out, static_cast<uint32_t>(to - from));
  for (int i = from; i < to; ++i) {
    PutLengthPrefixedSlice(&out, sp.GetCell(i));
  }
  return out;
}

Status UnpackCells(Slice bundle, std::vector<std::string>* cells) {
  uint32_t n;
  if (!GetVarint32(&bundle, &n)) return Status::Corruption("cell bundle");
  cells->clear();
  cells->reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    Slice c;
    if (!GetLengthPrefixedSlice(&bundle, &c)) {
      return Status::Corruption("cell bundle");
    }
    cells->push_back(c.ToString());
  }
  return Status::OK();
}

}  // namespace soreorg
