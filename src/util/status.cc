#include "src/util/status.h"

namespace soreorg {

namespace {
const char* CodeName(Status::Code code) {
  switch (code) {
    case Status::Code::kOk:
      return "OK";
    case Status::Code::kNotFound:
      return "NotFound";
    case Status::Code::kCorruption:
      return "Corruption";
    case Status::Code::kIOError:
      return "IOError";
    case Status::Code::kInvalidArgument:
      return "InvalidArgument";
    case Status::Code::kBusy:
      return "Busy";
    case Status::Code::kBackoff:
      return "Backoff";
    case Status::Code::kDeadlock:
      return "Deadlock";
    case Status::Code::kAborted:
      return "Aborted";
    case Status::Code::kTimedOut:
      return "TimedOut";
    case Status::Code::kNotSupported:
      return "NotSupported";
    case Status::Code::kCrashed:
      return "Crashed";
  }
  return "Unknown";
}
}  // namespace

std::string Status::ToString() const {
  std::string out = CodeName(code_);
  if (!msg_.empty()) {
    out += ": ";
    out += msg_;
  }
  return out;
}

}  // namespace soreorg
