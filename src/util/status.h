// Status: the library-wide error-reporting type.
//
// soreorg does not throw exceptions across public API boundaries. Every
// fallible operation returns a Status (or a value + Status out-param). The
// code set is tailored to the needs of the reorganization protocols: in
// particular kBackoff models the paper's RX-conflict rule (the requester must
// release its parent lock and wait via an instant-duration RS lock rather
// than queue), and kDeadlock carries the reorganizer-is-victim policy.

#ifndef SOREORG_UTIL_STATUS_H_
#define SOREORG_UTIL_STATUS_H_

#include <string>
#include <utility>

namespace soreorg {

class Status {
 public:
  enum class Code : unsigned char {
    kOk = 0,
    kNotFound = 1,
    kCorruption = 2,
    kIOError = 3,
    kInvalidArgument = 4,
    kBusy = 5,
    // A lock request hit an RX-held page: the caller must back off per the
    // paper's protocol (release parent lock, take an instant-duration RS lock
    // on the parent, retry the traversal).
    kBackoff = 6,
    kDeadlock = 7,
    kAborted = 8,
    kTimedOut = 9,
    kNotSupported = 10,
    kCrashed = 11,  // simulated system failure (crash injection)
  };

  Status() : code_(Code::kOk) {}

  static Status OK() { return Status(); }
  static Status NotFound(std::string msg = "") {
    return Status(Code::kNotFound, std::move(msg));
  }
  static Status Corruption(std::string msg = "") {
    return Status(Code::kCorruption, std::move(msg));
  }
  static Status IOError(std::string msg = "") {
    return Status(Code::kIOError, std::move(msg));
  }
  static Status InvalidArgument(std::string msg = "") {
    return Status(Code::kInvalidArgument, std::move(msg));
  }
  static Status Busy(std::string msg = "") {
    return Status(Code::kBusy, std::move(msg));
  }
  static Status Backoff(std::string msg = "") {
    return Status(Code::kBackoff, std::move(msg));
  }
  static Status Deadlock(std::string msg = "") {
    return Status(Code::kDeadlock, std::move(msg));
  }
  static Status Aborted(std::string msg = "") {
    return Status(Code::kAborted, std::move(msg));
  }
  static Status TimedOut(std::string msg = "") {
    return Status(Code::kTimedOut, std::move(msg));
  }
  static Status NotSupported(std::string msg = "") {
    return Status(Code::kNotSupported, std::move(msg));
  }
  static Status Crashed(std::string msg = "") {
    return Status(Code::kCrashed, std::move(msg));
  }

  bool ok() const { return code_ == Code::kOk; }
  bool IsNotFound() const { return code_ == Code::kNotFound; }
  bool IsCorruption() const { return code_ == Code::kCorruption; }
  bool IsIOError() const { return code_ == Code::kIOError; }
  bool IsInvalidArgument() const { return code_ == Code::kInvalidArgument; }
  bool IsBusy() const { return code_ == Code::kBusy; }
  bool IsBackoff() const { return code_ == Code::kBackoff; }
  bool IsDeadlock() const { return code_ == Code::kDeadlock; }
  bool IsAborted() const { return code_ == Code::kAborted; }
  bool IsTimedOut() const { return code_ == Code::kTimedOut; }
  bool IsNotSupported() const { return code_ == Code::kNotSupported; }
  bool IsCrashed() const { return code_ == Code::kCrashed; }

  Code code() const { return code_; }
  const std::string& message() const { return msg_; }

  /// Human-readable "CODE: message" string for logs and test failures.
  std::string ToString() const;

 private:
  Status(Code code, std::string msg) : code_(code), msg_(std::move(msg)) {}

  Code code_;
  std::string msg_;
};

}  // namespace soreorg

#endif  // SOREORG_UTIL_STATUS_H_
