// Deterministic PRNG (xorshift128+) used by workload generators, property
// tests and the swap-heuristic benchmarks. Seeded explicitly everywhere so
// experiments are reproducible run-to-run.

#ifndef SOREORG_UTIL_RANDOM_H_
#define SOREORG_UTIL_RANDOM_H_

#include <cstdint>

namespace soreorg {

class Random {
 public:
  explicit Random(uint64_t seed) {
    s_[0] = seed ? seed : 0x9e3779b97f4a7c15ull;
    s_[1] = SplitMix(&s_[0]);
    s_[0] = SplitMix(&s_[1]);
  }

  uint64_t Next() {
    uint64_t x = s_[0];
    const uint64_t y = s_[1];
    s_[0] = y;
    x ^= x << 23;
    s_[1] = x ^ y ^ (x >> 17) ^ (y >> 26);
    return s_[1] + y;
  }

  /// Uniform in [0, n). n must be > 0.
  uint64_t Uniform(uint64_t n) { return Next() % n; }

  /// Uniform in [lo, hi].
  uint64_t Range(uint64_t lo, uint64_t hi) {
    return lo + Uniform(hi - lo + 1);
  }

  /// True with probability p (p in [0,1]).
  bool Bernoulli(double p) {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0) < p;
  }

  /// Skewed pick in [0, n): probability of bucket i proportional to
  /// (n - i)^theta. theta == 0 is uniform.
  uint64_t Skewed(uint64_t n, double theta) {
    if (theta <= 0.0) return Uniform(n);
    double u =
        static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
    // Inverse-transform of density ~ (1 - x)^theta on [0,1).
    double x = 1.0 - Pow(u, 1.0 / (theta + 1.0));
    uint64_t i = static_cast<uint64_t>(x * static_cast<double>(n));
    return i >= n ? n - 1 : i;
  }

 private:
  static uint64_t SplitMix(uint64_t* state) {
    uint64_t z = (*state += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }

  static double Pow(double base, double exp) {
    // Tiny local pow via exp/log to avoid <cmath> issues in headers; accuracy
    // is ample for workload skew.
    if (base <= 0.0) return 0.0;
    return __builtin_exp(exp * __builtin_log(base));
  }

  uint64_t s_[2];
};

}  // namespace soreorg

#endif  // SOREORG_UTIL_RANDOM_H_
