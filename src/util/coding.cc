#include "src/util/coding.h"

namespace soreorg {

void PutFixed16(std::string* dst, uint16_t value) {
  char buf[sizeof(value)];
  EncodeFixed16(buf, value);
  dst->append(buf, sizeof(buf));
}

void PutFixed32(std::string* dst, uint32_t value) {
  char buf[sizeof(value)];
  EncodeFixed32(buf, value);
  dst->append(buf, sizeof(buf));
}

void PutFixed64(std::string* dst, uint64_t value) {
  char buf[sizeof(value)];
  EncodeFixed64(buf, value);
  dst->append(buf, sizeof(buf));
}

void PutVarint32(std::string* dst, uint32_t v) {
  unsigned char buf[5];
  int n = 0;
  while (v >= 0x80) {
    buf[n++] = static_cast<unsigned char>(v) | 0x80;
    v >>= 7;
  }
  buf[n++] = static_cast<unsigned char>(v);
  dst->append(reinterpret_cast<char*>(buf), n);
}

void PutVarint64(std::string* dst, uint64_t v) {
  unsigned char buf[10];
  int n = 0;
  while (v >= 0x80) {
    buf[n++] = static_cast<unsigned char>(v) | 0x80;
    v >>= 7;
  }
  buf[n++] = static_cast<unsigned char>(v);
  dst->append(reinterpret_cast<char*>(buf), n);
}

void PutLengthPrefixedSlice(std::string* dst, const Slice& value) {
  PutVarint32(dst, static_cast<uint32_t>(value.size()));
  dst->append(value.data(), value.size());
}

bool GetVarint32(Slice* input, uint32_t* value) {
  uint32_t result = 0;
  for (uint32_t shift = 0; shift <= 28 && !input->empty(); shift += 7) {
    uint32_t byte = static_cast<unsigned char>((*input)[0]);
    input->remove_prefix(1);
    if (byte & 0x80) {
      result |= ((byte & 0x7f) << shift);
    } else {
      result |= (byte << shift);
      *value = result;
      return true;
    }
  }
  return false;
}

bool GetVarint64(Slice* input, uint64_t* value) {
  uint64_t result = 0;
  for (uint32_t shift = 0; shift <= 63 && !input->empty(); shift += 7) {
    uint64_t byte = static_cast<unsigned char>((*input)[0]);
    input->remove_prefix(1);
    if (byte & 0x80) {
      result |= ((byte & 0x7f) << shift);
    } else {
      result |= (byte << shift);
      *value = result;
      return true;
    }
  }
  return false;
}

bool GetLengthPrefixedSlice(Slice* input, Slice* result) {
  uint32_t len;
  if (!GetVarint32(input, &len)) return false;
  if (input->size() < len) return false;
  *result = Slice(input->data(), len);
  input->remove_prefix(len);
  return true;
}

bool GetFixed16(Slice* input, uint16_t* value) {
  if (input->size() < sizeof(*value)) return false;
  *value = DecodeFixed16(input->data());
  input->remove_prefix(sizeof(*value));
  return true;
}

bool GetFixed32(Slice* input, uint32_t* value) {
  if (input->size() < sizeof(*value)) return false;
  *value = DecodeFixed32(input->data());
  input->remove_prefix(sizeof(*value));
  return true;
}

bool GetFixed64(Slice* input, uint64_t* value) {
  if (input->size() < sizeof(*value)) return false;
  *value = DecodeFixed64(input->data());
  input->remove_prefix(sizeof(*value));
  return true;
}

std::string EncodeU64Key(uint64_t v) {
  std::string s(8, '\0');
  for (int i = 7; i >= 0; --i) {
    s[i] = static_cast<char>(v & 0xff);
    v >>= 8;
  }
  return s;
}

uint64_t DecodeU64Key(const Slice& s) {
  uint64_t v = 0;
  for (size_t i = 0; i < s.size() && i < 8; ++i) {
    v = (v << 8) | static_cast<unsigned char>(s[i]);
  }
  return v;
}

}  // namespace soreorg
