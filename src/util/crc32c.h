// CRC32C (Castagnoli) for WAL record and checkpoint integrity checking.

#ifndef SOREORG_UTIL_CRC32C_H_
#define SOREORG_UTIL_CRC32C_H_

#include <cstddef>
#include <cstdint>

namespace soreorg {
namespace crc32c {

/// Return the crc32c of concat(A, data[0,n-1]) where init_crc is the crc32c
/// of some string A.
uint32_t Extend(uint32_t init_crc, const char* data, size_t n);

/// Return the crc32c of data[0,n-1].
inline uint32_t Value(const char* data, size_t n) { return Extend(0, data, n); }

/// Mask a crc so that storing a crc next to the data it covers does not
/// produce degenerate self-referential checksums (the RocksDB trick).
inline uint32_t Mask(uint32_t crc) {
  return ((crc >> 15) | (crc << 17)) + 0xa282ead8ul;
}

inline uint32_t Unmask(uint32_t masked_crc) {
  uint32_t rot = masked_crc - 0xa282ead8ul;
  return ((rot >> 17) | (rot << 15));
}

}  // namespace crc32c
}  // namespace soreorg

#endif  // SOREORG_UTIL_CRC32C_H_
