// Little-endian fixed-width and varint encodings, plus length-prefixed
// slices. Used for page layouts, WAL record payloads, and checkpoint images.

#ifndef SOREORG_UTIL_CODING_H_
#define SOREORG_UTIL_CODING_H_

#include <cstdint>
#include <cstring>
#include <string>

#include "src/util/slice.h"

namespace soreorg {

inline void EncodeFixed16(char* dst, uint16_t value) {
  memcpy(dst, &value, sizeof(value));
}
inline void EncodeFixed32(char* dst, uint32_t value) {
  memcpy(dst, &value, sizeof(value));
}
inline void EncodeFixed64(char* dst, uint64_t value) {
  memcpy(dst, &value, sizeof(value));
}

inline uint16_t DecodeFixed16(const char* ptr) {
  uint16_t v;
  memcpy(&v, ptr, sizeof(v));
  return v;
}
inline uint32_t DecodeFixed32(const char* ptr) {
  uint32_t v;
  memcpy(&v, ptr, sizeof(v));
  return v;
}
inline uint64_t DecodeFixed64(const char* ptr) {
  uint64_t v;
  memcpy(&v, ptr, sizeof(v));
  return v;
}

void PutFixed16(std::string* dst, uint16_t value);
void PutFixed32(std::string* dst, uint32_t value);
void PutFixed64(std::string* dst, uint64_t value);

void PutVarint32(std::string* dst, uint32_t value);
void PutVarint64(std::string* dst, uint64_t value);
void PutLengthPrefixedSlice(std::string* dst, const Slice& value);

/// Parse a varint32 from the front of *input; on success advances *input and
/// returns true. Returns false on truncation/overflow.
bool GetVarint32(Slice* input, uint32_t* value);
bool GetVarint64(Slice* input, uint64_t* value);
bool GetLengthPrefixedSlice(Slice* input, Slice* result);
bool GetFixed16(Slice* input, uint16_t* value);
bool GetFixed32(Slice* input, uint32_t* value);
bool GetFixed64(Slice* input, uint64_t* value);

/// Encode a u64 key big-endian so lexicographic Slice order matches numeric
/// order. Convenience for tests, examples and benchmarks.
std::string EncodeU64Key(uint64_t v);
uint64_t DecodeU64Key(const Slice& s);

}  // namespace soreorg

#endif  // SOREORG_UTIL_CODING_H_
