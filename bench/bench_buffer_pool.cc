// Buffer-pool hot-hit scaling: the sharded pool (default 16 shards) vs the
// same pool forced to a single shard (the old global-mutex design). Each
// thread fetches and unpins random pages out of a working set that fits
// entirely in the pool, so every access is a hit and the measured cost is
// synchronization, not I/O — the lock-convoy component that used to pollute
// bench_concurrency.
//
// Flags: --threads=<max> (default 8), --ops=<per-thread ops> (default 400000,
// CI smoke passes something tiny), --json=<path>.

#include <thread>

#include "bench/bench_util.h"
#include "src/storage/buffer_pool.h"

using namespace soreorg;
using namespace soreorg::bench;

namespace {

constexpr size_t kPoolPages = 2048;
constexpr size_t kWorkingSet = 1024;  // < kPoolPages: all hits once warm

struct Run {
  double mops = 0;
  uint64_t failures = 0;
};

Run HotHits(size_t num_shards, int threads, uint64_t ops_per_thread,
            double dirty_fraction) {
  MemEnv env;
  DiskManager dm(&env, "pages");
  if (!dm.Open().ok()) std::abort();
  BufferPool bp(&dm, kPoolPages, nullptr, num_shards);

  std::vector<PageId> pids;
  for (size_t i = 0; i < kWorkingSet; ++i) {
    PageId pid;
    Page* page;
    if (!bp.NewPage(&pid, &page).ok()) std::abort();
    bp.UnpinPage(pid, true);
    pids.push_back(pid);
  }
  bp.FlushAndSync();

  std::vector<std::thread> workers;
  std::vector<uint64_t> failures(threads, 0);
  Timer t;
  for (int ti = 0; ti < threads; ++ti) {
    workers.emplace_back([&, ti] {
      Random rng(1000 + ti);
      uint64_t bad = 0;
      for (uint64_t i = 0; i < ops_per_thread; ++i) {
        PageId pid = pids[rng.Uniform(pids.size())];
        Page* page;
        if (!bp.FetchPage(pid, &page).ok()) {
          ++bad;
          continue;
        }
        bool dirty = dirty_fraction > 0 && rng.Bernoulli(dirty_fraction);
        bp.UnpinPage(pid, dirty);
      }
      failures[ti] = bad;
    });
  }
  for (auto& w : workers) w.join();
  double secs = t.Seconds();

  Run r;
  r.mops = static_cast<double>(ops_per_thread) * threads / secs / 1e6;
  for (uint64_t f : failures) r.failures += f;
  return r;
}

// Best-of-2: a second process on the machine perturbs single runs badly
// enough to invert comparisons; the max of two is a steadier estimator of
// the uncontended cost.
Run BestOf2(size_t num_shards, int threads, uint64_t ops_per_thread,
            double dirty_fraction) {
  Run a = HotHits(num_shards, threads, ops_per_thread, dirty_fraction);
  Run b = HotHits(num_shards, threads, ops_per_thread, dirty_fraction);
  return a.mops >= b.mops ? a : b;
}

}  // namespace

int main(int argc, char** argv) {
  Header("buffer-pool hot-hit scaling (sharded vs single-shard)",
         "not a paper figure — infrastructure: §8's concurrency claim is "
         "only measurable if the buffer pool itself is not the bottleneck");

  JsonReporter json("bench_buffer_pool", argc, argv);
  const char* v = FlagValue(argc, argv, "--threads");
  int max_threads = v ? std::atoi(v) : 8;
  v = FlagValue(argc, argv, "--ops");
  uint64_t ops = v ? std::strtoull(v, nullptr, 10) : 400000;

  std::printf("pool %zu pages, working set %zu pages, %llu ops/thread\n\n",
              kPoolPages, kWorkingSet, (unsigned long long)ops);
  std::printf("%8s %10s %16s %16s %9s\n", "threads", "dirty%", "sharded Mops/s",
              "1-shard Mops/s", "speedup");

  for (double dirty : {0.0, 0.1}) {
    for (int threads = 1; threads <= max_threads; threads *= 2) {
      Run single = BestOf2(1, threads, ops, dirty);
      Run sharded = BestOf2(0, threads, ops, dirty);
      std::printf("%8d %10.0f %16.2f %16.2f %8.2fx\n", threads, dirty * 100,
                  sharded.mops, single.mops, sharded.mops / single.mops);
      if (sharded.failures + single.failures > 0) {
        std::printf("  (failures: sharded=%llu single=%llu)\n",
                    (unsigned long long)sharded.failures,
                    (unsigned long long)single.failures);
      }
      char name[64];
      std::snprintf(name, sizeof(name), "hot_hit/dirty=%.0f/shards=16",
                    dirty * 100);
      json.Add(name, sharded.mops, "Mops/s", threads);
      std::snprintf(name, sizeof(name), "hot_hit/dirty=%.0f/shards=1",
                    dirty * 100);
      json.Add(name, single.mops, "Mops/s", threads);
    }
  }

  std::printf("\nexpected shape: on a multicore machine the sharded pool "
              "scales with threads\nwhile the single-shard pool flattens "
              "(one mutex serializes every hit);\non a single core both "
              "flatten and the ratio stays near 1.\n");
  return json.Write() ? 0 : 1;
}
