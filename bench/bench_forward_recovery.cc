// E4 — §5.1's claim: Forward Recovery "will resume the work instead of
// aborting the work as a normal recovery method will do. This will make
// reorganization faster in case of system failure."
//
// Crash pass 1 at a sweep of WAL-write points. After each crash + restart,
// measure how much reorganization work survived (LK progress, leaves already
// compacted) and how much total work the full reorganization ends up doing,
// under the forward policy vs the conventional rollback policy.

#include "bench/bench_util.h"
#include "src/storage/fault_env.h"

using namespace soreorg;
using namespace soreorg::bench;

namespace {

constexpr uint64_t kN = 20000;

struct CrashResult {
  bool crashed = false;
  bool open_unit = false;          // an incomplete unit was in the log
  uint64_t lk = 0;                 // restart position after recovery
  uint64_t leaves_after_restart = 0;
  uint64_t moved_after_restart = 0;  // records moved to FINISH the pass
  double recovery_secs = 0;
  // Segment/redo forensics (ISSUE 10): redo scan volume and rate.
  uint64_t wal_bytes_scanned = 0;
  uint64_t segments_scanned = 0;
  bool tail_torn = false;
  int redo_threads = 1;
};

CrashResult RunOne(RecoveryPolicy policy, int crash_at, int redo_threads) {
  MemEnv env;
  CrashInjector injector(&env);
  DatabaseOptions options;
  options.recovery_policy = policy;
  options.log_buffer_bytes = 256;   // tiny group-commit cap: WAL writes happen
                                    // mid-unit, so crashes land inside units
  options.wal_segment_bytes = 64 * 1024;  // redo crosses segment boundaries
  options.redo_threads = redo_threads;
  std::unique_ptr<Database> db;
  Database::Open(&env, options, &db);
  std::vector<uint64_t> survivors;
  SparsifyByDeletion(db.get(), kN, 64, 0.95, 0.7, 10, 42, &survivors);
  db->Checkpoint();

  injector.ArmAfterOps(crash_at, options.name + ".wal");
  db->reorganizer()->RunLeafPass();
  CrashResult r;
  r.crashed = injector.fired();
  injector.Disarm();
  if (!r.crashed) return r;

  db.reset();
  env.Crash();
  Timer t;
  Status s = Database::Open(&env, options, &db);
  r.recovery_secs = t.Seconds();
  if (!s.ok()) {
    std::fprintf(stderr, "recovery failed: %s\n", s.ToString().c_str());
    std::abort();
  }
  Check(db.get(), "post-recovery");
  r.wal_bytes_scanned = db->recovery_result().wal_bytes_scanned;
  r.segments_scanned = db->recovery_result().segments_scanned;
  r.tail_torn = db->recovery_result().tail_segment_torn;
  r.redo_threads = db->recovery_result().redo_threads_used;
  r.open_unit = db->recovery_result().reorg.has_open_unit;
  r.lk = DecodeU64Key(db->reorg_table()->largest_finished_key());
  r.leaves_after_restart = Shape(db.get()).leaf_pages;

  // Finish the pass; count the remaining work.
  db->reorganizer()->RunLeafPass();
  Check(db.get(), "post-resume");
  r.moved_after_restart = db->reorganizer()->stats().records_moved;
  uint64_t n = 0;
  db->Scan(Slice(), Slice(), [&n](const Slice&, const Slice&) {
    ++n;
    return true;
  });
  if (n != survivors.size()) {
    std::fprintf(stderr, "RECORD LOSS: %llu != %zu\n",
                 (unsigned long long)n, survivors.size());
    std::abort();
  }
  return r;
}

// P6 — redo throughput on the segmented WAL: checkpointed baseline, a big
// post-checkpoint update burst, crash, recover. Reports MB of WAL replayed
// per second of restart, plus a machine-normalized ratio against a raw
// ReadAll scan of the same log measured in the same process (machine speed
// divides out of the ratio, so CI can gate it).
struct RedoBenchResult {
  double recovery_secs = 0;
  double scan_secs = 0;
  uint64_t redo_bytes = 0;       // bytes the recovery scan covered
  uint64_t scan_bytes = 0;       // bytes the raw scan covered
  uint64_t records_redone = 0;
  uint64_t segments_scanned = 0;
  int threads_used = 1;

  double redo_mb_per_s() const {
    return recovery_secs > 0
               ? redo_bytes / recovery_secs / (1024.0 * 1024.0)
               : 0;
  }
  double scan_mb_per_s() const {
    return scan_secs > 0 ? scan_bytes / scan_secs / (1024.0 * 1024.0) : 0;
  }
};

RedoBenchResult MeasureRedo(int updates, int redo_threads) {
  MemEnv base;
  FaultInjectionEnv env(&base);
  DatabaseOptions options;
  options.wal_segment_bytes = 64 * 1024;
  options.redo_threads = redo_threads;
  std::unique_ptr<Database> db;
  Database::Open(&env, options, &db);
  std::vector<uint64_t> survivors;
  SparsifyByDeletion(db.get(), 6000, 64, 0.95, 0.3, 10, 11, &survivors);
  db->Checkpoint();
  const std::string value(64, 'u');
  for (int i = 0; i < updates; ++i) {
    uint64_t key = survivors[(static_cast<uint64_t>(i) * 131) %
                             survivors.size()];
    db->Update(EncodeU64Key(key), value);
  }
  // Take the env down so the close cannot flush the dirty pages — all those
  // updates become redo work.
  env.FailOpAfter(1, "", "");
  for (int i = 0; i < 1000 && db->Update(EncodeU64Key(survivors[0]), value).ok();
       ++i) {
  }
  db.reset();
  env.Crash();

  RedoBenchResult r;
  {
    Timer t;
    LogManagerOptions lopts;
    lopts.segment_bytes = options.wal_segment_bytes;
    LogManager scan(&env, options.name + ".wal", lopts);
    std::vector<LogRecord> recs;
    LogReadStats st;
    if (scan.Open().ok()) scan.ReadAll(&recs, 0, &st);
    r.scan_secs = t.Seconds();
    r.scan_bytes = st.valid_bytes;
  }
  Timer t;
  Status s = Database::Open(&env, options, &db);
  r.recovery_secs = t.Seconds();
  if (!s.ok()) {
    std::fprintf(stderr, "P6 recovery failed: %s\n", s.ToString().c_str());
    std::abort();
  }
  Check(db.get(), "P6 post-recovery");
  r.redo_bytes = db->recovery_result().wal_bytes_scanned;
  r.records_redone = db->recovery_result().records_redone;
  r.segments_scanned = db->recovery_result().segments_scanned;
  r.threads_used = db->recovery_result().redo_threads_used;
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  Header("E4: Forward Recovery vs rollback (§5.1)",
         "\"The reorganization unit will be able to finish the work instead "
         "of rolling back and wasting the work that has already been done\"");
  JsonReporter json("bench_forward_recovery", argc, argv);
  const bool quick = HasFlag(argc, argv, "--quick");

  std::vector<int> crash_points =
      quick ? std::vector<int>{41, 81}
            : std::vector<int>{40, 41, 42, 43, 80, 81, 82, 83};

  std::printf("%-10s %-10s %10s %10s %16s %18s %12s %10s %8s\n", "crash@",
              "policy", "unit open", "LK after", "leaves @restart",
              "moved to finish", "recov s", "redo MB/s", "segs");
  double redo_bytes_total = 0, redo_secs_total = 0;
  for (int crash_at : crash_points) {
    for (RecoveryPolicy policy :
         {RecoveryPolicy::kForward, RecoveryPolicy::kRollback}) {
      CrashResult r = RunOne(policy, crash_at, /*redo_threads=*/1);
      if (!r.crashed) {
        std::printf("wal#%-5d (pass finished before this point)\n", crash_at);
        break;
      }
      const double mb_per_s =
          r.recovery_secs > 0
              ? r.wal_bytes_scanned / r.recovery_secs / (1024.0 * 1024.0)
              : 0;
      std::printf(
          "wal#%-5d %-10s %10s %10llu %16llu %18llu %12.4f %10.1f %8llu\n",
          crash_at,
          policy == RecoveryPolicy::kForward ? "forward" : "rollback",
          r.open_unit ? "yes" : "no", (unsigned long long)r.lk,
          (unsigned long long)r.leaves_after_restart,
          (unsigned long long)r.moved_after_restart, r.recovery_secs,
          mb_per_s, (unsigned long long)r.segments_scanned);
      std::string prefix =
          "e4/wal" + std::to_string(crash_at) + "/" +
          (policy == RecoveryPolicy::kForward ? "forward" : "rollback");
      json.Add(prefix + "/lk", static_cast<double>(r.lk), "key");
      json.Add(prefix + "/moved_to_finish",
               static_cast<double>(r.moved_after_restart), "records");
      json.Add(prefix + "/recovery_s", r.recovery_secs, "s");
      json.Add(prefix + "/segments_scanned",
               static_cast<double>(r.segments_scanned), "segments");
      if (policy == RecoveryPolicy::kForward) {
        redo_bytes_total += static_cast<double>(r.wal_bytes_scanned);
        redo_secs_total += r.recovery_secs;
      }
    }
  }
  // The CI-gated rate: MB of WAL replayed per second of restart, summed
  // over the forward-policy runs (serial redo — the oracle path every
  // configuration exercises).
  const double redo_rate = redo_secs_total > 0
                               ? redo_bytes_total / redo_secs_total /
                                     (1024.0 * 1024.0)
                               : 0;
  json.Add("e4/redo_mb_per_s", redo_rate, "MB/s", 1);
  std::printf("\naggregate redo rate: %.1f MB/s over %.4f s of recovery\n",
              redo_rate, redo_secs_total);

  // Parallel-redo parity check at one crash point: same recovery, 4 redo
  // workers. On a single hardware thread this is a correctness+overhead
  // probe, not a speedup claim.
  {
    CrashResult r = RunOne(RecoveryPolicy::kForward, crash_points.front(), 4);
    if (r.crashed) {
      const double mb_per_s =
          r.recovery_secs > 0
              ? r.wal_bytes_scanned / r.recovery_secs / (1024.0 * 1024.0)
              : 0;
      std::printf("parallel redo (threads=%d): %.4f s, %.1f MB/s\n",
                  r.redo_threads, r.recovery_secs, mb_per_s);
      json.Add("e4/parallel/recovery_s", r.recovery_secs, "s",
               r.redo_threads);
      json.Add("e4/parallel/redo_mb_per_s", mb_per_s, "MB/s",
               r.redo_threads);
    }
  }
  // P6 — redo throughput and the CI-gated normalized ratio.
  {
    const int updates = quick ? 3000 : 12000;
    RedoBenchResult serial = MeasureRedo(updates, /*redo_threads=*/1);
    RedoBenchResult par = MeasureRedo(updates, /*redo_threads=*/4);
    const double redo_vs_scan =
        serial.scan_mb_per_s() > 0
            ? serial.redo_mb_per_s() / serial.scan_mb_per_s()
            : 0;
    std::printf("\nP6: redo throughput (%d post-checkpoint updates, 64 KiB "
                "segments):\n",
                updates);
    std::printf("%-24s %10.1f MB/s  (%llu records, %llu segments, %.4f s)\n",
                "serial redo", serial.redo_mb_per_s(),
                (unsigned long long)serial.records_redone,
                (unsigned long long)serial.segments_scanned,
                serial.recovery_secs);
    std::printf("%-24s %10.1f MB/s  (threads=%d, %.4f s)\n", "parallel redo",
                par.redo_mb_per_s(), par.threads_used, par.recovery_secs);
    std::printf("%-24s %10.1f MB/s\n", "raw log scan",
                serial.scan_mb_per_s());
    std::printf("%-24s %10.3f   (gated: recovery work per byte vs a bare "
                "scan)\n",
                "redo/scan ratio", redo_vs_scan);
    json.Add("p6/redo_mb_per_s", serial.redo_mb_per_s(), "MB/s", 1);
    json.Add("p6/parallel_redo_mb_per_s", par.redo_mb_per_s(), "MB/s",
             par.threads_used);
    json.Add("p6/scan_mb_per_s", serial.scan_mb_per_s(), "MB/s", 1);
    json.Add("p6/redo_vs_scan", redo_vs_scan, "ratio", 1);
    json.Add("p6/records_redone", static_cast<double>(serial.records_redone),
             "records", 1);
    json.Add("p6/segments_scanned",
             static_cast<double>(serial.segments_scanned), "segments", 1);
  }

  std::printf("\nexpected shape: with forward recovery the interrupted "
              "unit's work is kept\n(LK is ahead, fewer leaves remain, less "
              "moving left to finish); rollback\ndiscards the open unit's "
              "moves and re-does them.\n");
  return json.Write() ? 0 : 1;
}
