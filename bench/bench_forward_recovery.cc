// E4 — §5.1's claim: Forward Recovery "will resume the work instead of
// aborting the work as a normal recovery method will do. This will make
// reorganization faster in case of system failure."
//
// Crash pass 1 at a sweep of WAL-write points. After each crash + restart,
// measure how much reorganization work survived (LK progress, leaves already
// compacted) and how much total work the full reorganization ends up doing,
// under the forward policy vs the conventional rollback policy.

#include "bench/bench_util.h"

using namespace soreorg;
using namespace soreorg::bench;

namespace {

constexpr uint64_t kN = 20000;

struct CrashResult {
  bool crashed = false;
  bool open_unit = false;          // an incomplete unit was in the log
  uint64_t lk = 0;                 // restart position after recovery
  uint64_t leaves_after_restart = 0;
  uint64_t moved_after_restart = 0;  // records moved to FINISH the pass
  double recovery_secs = 0;
};

CrashResult RunOne(RecoveryPolicy policy, int crash_at) {
  MemEnv env;
  CrashInjector injector(&env);
  DatabaseOptions options;
  options.recovery_policy = policy;
  options.log_buffer_bytes = 256;   // tiny group-commit cap: WAL writes happen
                                    // mid-unit, so crashes land inside units
  std::unique_ptr<Database> db;
  Database::Open(&env, options, &db);
  std::vector<uint64_t> survivors;
  SparsifyByDeletion(db.get(), kN, 64, 0.95, 0.7, 10, 42, &survivors);
  db->Checkpoint();

  injector.ArmAfterOps(crash_at, options.name + ".wal");
  db->reorganizer()->RunLeafPass();
  CrashResult r;
  r.crashed = injector.fired();
  injector.Disarm();
  if (!r.crashed) return r;

  db.reset();
  env.Crash();
  Timer t;
  Status s = Database::Open(&env, options, &db);
  r.recovery_secs = t.Seconds();
  if (!s.ok()) {
    std::fprintf(stderr, "recovery failed: %s\n", s.ToString().c_str());
    std::abort();
  }
  Check(db.get(), "post-recovery");
  r.open_unit = db->recovery_result().reorg.has_open_unit;
  r.lk = DecodeU64Key(db->reorg_table()->largest_finished_key());
  r.leaves_after_restart = Shape(db.get()).leaf_pages;

  // Finish the pass; count the remaining work.
  db->reorganizer()->RunLeafPass();
  Check(db.get(), "post-resume");
  r.moved_after_restart = db->reorganizer()->stats().records_moved;
  uint64_t n = 0;
  db->Scan(Slice(), Slice(), [&n](const Slice&, const Slice&) {
    ++n;
    return true;
  });
  if (n != survivors.size()) {
    std::fprintf(stderr, "RECORD LOSS: %llu != %zu\n",
                 (unsigned long long)n, survivors.size());
    std::abort();
  }
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  Header("E4: Forward Recovery vs rollback (§5.1)",
         "\"The reorganization unit will be able to finish the work instead "
         "of rolling back and wasting the work that has already been done\"");
  JsonReporter json("bench_forward_recovery", argc, argv);

  std::printf("%-10s %-10s %10s %10s %16s %18s %12s\n", "crash@", "policy",
              "unit open", "LK after", "leaves @restart", "moved to finish",
              "recov s");
  for (int crash_at : {40, 41, 42, 43, 80, 81, 82, 83}) {
    for (RecoveryPolicy policy :
         {RecoveryPolicy::kForward, RecoveryPolicy::kRollback}) {
      CrashResult r = RunOne(policy, crash_at);
      if (!r.crashed) {
        std::printf("wal#%-5d (pass finished before this point)\n", crash_at);
        break;
      }
      std::printf("wal#%-5d %-10s %10s %10llu %16llu %18llu %12.4f\n",
                  crash_at,
                  policy == RecoveryPolicy::kForward ? "forward" : "rollback",
                  r.open_unit ? "yes" : "no", (unsigned long long)r.lk,
                  (unsigned long long)r.leaves_after_restart,
                  (unsigned long long)r.moved_after_restart,
                  r.recovery_secs);
      std::string prefix =
          "e4/wal" + std::to_string(crash_at) + "/" +
          (policy == RecoveryPolicy::kForward ? "forward" : "rollback");
      json.Add(prefix + "/lk", static_cast<double>(r.lk), "key");
      json.Add(prefix + "/moved_to_finish",
               static_cast<double>(r.moved_after_restart), "records");
      json.Add(prefix + "/recovery_s", r.recovery_secs, "s");
    }
  }
  std::printf("\nexpected shape: with forward recovery the interrupted "
              "unit's work is kept\n(LK is ahead, fewer leaves remain, less "
              "moving left to finish); rollback\ndiscards the open unit's "
              "moves and re-does them.\n");
  return json.Write() ? 0 : 1;
}
