// E6 — pass 3 and the switch (§7, "described in detail for the first
// time"): the upper levels shrink, and the only updater-visible blocking is
// the short side-file X window during the switch.

#include <atomic>
#include <thread>

#include "bench/bench_util.h"

using namespace soreorg;
using namespace soreorg::bench;

int main(int argc, char** argv) {
  Header("E6: tree shrink + switch window (§7)",
         "internal reorganization S-locks one base page at a time; only the "
         "switch blocks base-page updaters, briefly; old upper levels are "
         "reclaimed after old transactions drain");
  JsonReporter json("bench_shrink_switch", argc, argv);

  std::printf("%-12s %18s %18s %12s %14s\n", "records", "before h/int",
              "after h/int", "discarded", "switch ms");
  for (uint64_t n : {20000ull, 40000ull, 80000ull}) {
    MemEnv env;
    auto db = SparseDb(&env, n, 0.8, 13);
    db->reorganizer()->RunLeafPass();
    BTreeStats before = Shape(db.get());
    db->reorganizer()->RunInternalPass();
    Check(db.get(), "E6");
    BTreeStats after = Shape(db.get());
    const SwitchStats& sw = db->reorganizer()->switch_stats();
    char b[32], a[32];
    std::snprintf(b, sizeof(b), "%llu / %llu",
                  (unsigned long long)before.height,
                  (unsigned long long)before.internal_pages);
    std::snprintf(a, sizeof(a), "%llu / %llu",
                  (unsigned long long)after.height,
                  (unsigned long long)after.internal_pages);
    std::printf("%-12llu %18s %18s %12llu %14.3f\n", (unsigned long long)n, b,
                a, (unsigned long long)sw.old_pages_discarded,
                sw.switch_window_ns / 1e6);
    std::string prefix = "e6/n" + std::to_string(n);
    json.Add(prefix + "/internal_before",
             static_cast<double>(before.internal_pages), "pages");
    json.Add(prefix + "/internal_after",
             static_cast<double>(after.internal_pages), "pages");
    json.Add(prefix + "/switch_ms", sw.switch_window_ns / 1e6, "ms");
  }

  // Switch window with live updaters: measure the worst-case updater stall
  // around the switch.
  std::printf("\nswitch with 2 live updater threads:\n");
  {
    MemEnv env;
    auto db = SparseDb(&env, 30000, 0.7, 29);
    db->reorganizer()->RunLeafPass();
    std::atomic<bool> stop{false};
    std::atomic<uint64_t> writes{0}, max_lat_us{0};
    std::vector<std::thread> updaters;
    for (int t = 0; t < 2; ++t) {
      updaters.emplace_back([&, t]() {
        Random rng(t + 77);
        while (!stop.load()) {
          uint64_t k = rng.Uniform(30000) * 10 + 1 + rng.Uniform(8);
          Timer lt;
          db->Put(EncodeU64Key(k), std::string(64, 'u'));
          uint64_t us = static_cast<uint64_t>(lt.Seconds() * 1e6);
          ++writes;
          uint64_t prev = max_lat_us.load();
          while (us > prev && !max_lat_us.compare_exchange_weak(prev, us)) {
          }
        }
      });
    }
    while (writes.load() == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    Status s = db->reorganizer()->RunInternalPass();
    stop.store(true);
    for (auto& t : updaters) t.join();
    Check(db.get(), "E6 live");
    const SwitchStats& sw = db->reorganizer()->switch_stats();
    std::printf("  pass 3: %s; switch window %.3f ms; final catch-up "
                "entries %llu;\n  updater writes completed %llu, worst "
                "updater latency %llu us\n",
                s.ToString().c_str(), sw.switch_window_ns / 1e6,
                (unsigned long long)sw.final_catchup_entries,
                (unsigned long long)writes.load(),
                (unsigned long long)max_lat_us.load());
    json.Add("e6/live/switch_ms", sw.switch_window_ns / 1e6, "ms");
    json.Add("e6/live/writes", static_cast<double>(writes.load()), "writes",
             2);
    json.Add("e6/live/max_updater_latency_us",
             static_cast<double>(max_lat_us.load()), "us", 2);
  }
  std::printf("\nexpected shape: internal pages and (at these sizes) height "
              "drop; the switch\nwindow is milliseconds — the only blocking "
              "the whole pass imposes on updaters.\n");
  return json.Write() ? 0 : 1;
}
