// P3: crash-torture sweep as a benchmark/smoke job. Replays the
// insert -> delete -> reorganize workload once per I/O crash point in each
// torture mode (clean power loss, torn page write, torn WAL write) and
// reports coverage: points swept, recoveries that verified model-equal and
// invariant-clean, tears detected by the page checksum, and — the number
// that must be zero — undetected failures.
//
// Flags:
//   --quick        CI smoke: stride the sweep and cap the points per mode.
//   --records=<n>  workload size (default 800).
//   --json=<path>  machine-readable metrics for the trajectory snapshots.

#include "bench/bench_util.h"
#include "src/sim/torture.h"

using namespace soreorg;
using namespace soreorg::bench;

namespace {

const char* ModeName(TortureMode mode) {
  switch (mode) {
    case TortureMode::kCleanCrash:
      return "clean_crash";
    case TortureMode::kTornPageWrite:
      return "torn_page";
    case TortureMode::kTornWalWrite:
      return "torn_wal";
  }
  return "?";
}

}  // namespace

int main(int argc, char** argv) {
  Header("P3: crash-torture coverage (§5, §5.1)",
         "\"Either the operation is completed or the B+-tree is recovered to "
         "a consistent state\" — crash at every I/O point and check.");

  JsonReporter json("bench_crash_torture", argc, argv);
  const bool quick = HasFlag(argc, argv, "--quick");
  uint64_t records = 800;
  if (const char* v = FlagValue(argc, argv, "--records")) {
    records = std::strtoull(v, nullptr, 10);
  }

  std::printf("%-12s %8s %8s %8s %10s %10s %10s  %8s\n", "mode", "points",
              "tested", "fired", "recovered", "detected", "undetected",
              "secs");

  int total_failures = 0;
  for (TortureMode mode : {TortureMode::kCleanCrash,
                           TortureMode::kTornPageWrite,
                           TortureMode::kTornWalWrite}) {
    TortureOptions opt;
    opt.mode = mode;
    opt.records = records;
    opt.db.buffer_pool_pages = 24;
    if (quick) {
      opt.stride = 3;
      opt.max_points = 8;
    }

    TortureHarness harness(opt);
    TortureStats stats;
    Timer t;
    Status s = harness.Run(&stats);
    double secs = t.Seconds();
    if (!s.ok() && stats.failures == 0) {
      std::printf("%-12s setup failed: %s\n", ModeName(mode),
                  s.ToString().c_str());
      return 1;
    }
    total_failures += stats.failures;

    std::printf("%-12s %8d %8d %8d %10d %10d %10d  %8.3f\n", ModeName(mode),
                stats.points_total, stats.points_tested, stats.faults_fired,
                stats.recoveries_ok, stats.detected_corruptions,
                stats.failures, secs);
    for (const auto& d : stats.failure_details) {
      std::printf("  FAIL %s\n", d.c_str());
    }

    std::string m(ModeName(mode));
    json.Add(m + "_points", stats.points_total, "points");
    json.Add(m + "_tested", stats.points_tested, "points");
    json.Add(m + "_recoveries_ok", stats.recoveries_ok, "points");
    json.Add(m + "_detected", stats.detected_corruptions, "points");
    json.Add(m + "_undetected", stats.failures, "points");
  }

  std::printf("\nexpected shape: every tested point is either a verified "
              "recovery or a detected\ntear; the undetected column is zero "
              "in all three modes.\n");
  if (!json.Write()) return 1;
  return total_failures == 0 ? 0 : 1;
}
