// E1 — §6.1's claim: "Initial experiments showed that our algorithm can
// greatly reduce the number of swaps needed at the second pass."
//
// The workload matters: a tree sparsified by deletions alone keeps its
// leaves in disk key order, so pass 2 has nothing to do under any policy.
// Real degradation mixes deletions with insert churn whose splits allocate
// new leaves at arbitrary free slots, scrambling the disk order. Pass 1 then
// either restores relative order as it compacts (the paper's heuristic: the
// first empty page after L and before C), scatters leaves further
// (first-fit anywhere), or leaves them scattered (no new-place) — and
// pass 2 pays for the difference in swaps, the expensive operation (two
// base pages locked, a full page image logged).

#include <atomic>
#include <thread>

#include "bench/bench_util.h"

using namespace soreorg;
using namespace soreorg::bench;

namespace {

double AscFraction(Database* db) {
  std::vector<PageId> leaves;
  db->tree()->CollectLeaves(&leaves);
  if (leaves.size() < 2) return 1.0;
  size_t asc = 0;
  for (size_t i = 1; i < leaves.size(); ++i) {
    if (leaves[i] > leaves[i - 1]) ++asc;
  }
  return static_cast<double>(asc) / static_cast<double>(leaves.size() - 1);
}

}  // namespace

int main(int argc, char** argv) {
  Header("E1: Find-Free-Space heuristic vs pass-2 swaps (§6.1)",
         "choosing the first empty page after L and before C \"can greatly "
         "reduce the number of swaps needed at the second pass\"");
  JsonReporter json("bench_swap_heuristic", argc, argv);

  const uint64_t kN = 50000;
  std::printf("%-10s %-20s %12s %8s %8s %14s\n", "churn", "policy",
              "order @ p1", "swaps", "moves", "swap log bytes");

  for (int churn : {1000, 3000, 6000}) {
    struct Policy {
      const char* name;
      FreeSpacePolicy policy;
    };
    for (const Policy& p :
         {Policy{"paper heuristic", FreeSpacePolicy::kPaperHeuristic},
          Policy{"first-fit anywhere", FreeSpacePolicy::kFirstFitAnywhere},
          Policy{"no new-place", FreeSpacePolicy::kNone}}) {
      MemEnv env;
      DatabaseOptions options;
      options.reorg.compactor.free_space_policy = p.policy;
      std::unique_ptr<Database> db;
      Database::Open(&env, options, &db);
      std::vector<uint64_t> survivors;
      AgingOptions aging;
      aging.n = kN;
      aging.cluster_delete_frac = 0.35;
      aging.random_delete_frac = 0.5;
      aging.churn_inserts = static_cast<uint64_t>(churn);
      aging.seed = 33;
      AgeDatabase(db.get(), aging, &survivors);

      // A checkpointer runs alongside pass 1 (as any real system would):
      // its syncs release the pass's own freed pages back to the free list
      // mid-pass, which is precisely when an unconstrained policy starts
      // picking pages BEHIND the finished prefix and ruining the order.
      std::atomic<bool> stop{false};
      std::thread checkpointer([&]() {
        while (!stop.load()) {
          db->Checkpoint();
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
      });
      db->reorganizer()->RunLeafPass();
      stop.store(true);
      checkpointer.join();
      Check(db.get(), p.name);
      double order_after_p1 = AscFraction(db.get());
      uint64_t p1_moves = db->reorganizer()->stats().move_units;
      db->log_manager()->ResetStats();
      db->reorganizer()->RunSwapPass();
      Check(db.get(), p.name);
      const ReorgStats& rs = db->reorganizer()->stats();
      std::printf("%-10d %-20s %12.2f %8llu %8llu %14llu\n", churn, p.name,
                  order_after_p1, (unsigned long long)rs.swap_units,
                  (unsigned long long)(rs.move_units - p1_moves),
                  (unsigned long long)db->log_manager()->bytes_for_type(
                      LogType::kReorgMove));

      const char* slug = p.policy == FreeSpacePolicy::kPaperHeuristic
                             ? "paper"
                             : (p.policy == FreeSpacePolicy::kFirstFitAnywhere
                                    ? "firstfit"
                                    : "none");
      std::string prefix =
          "e1/churn" + std::to_string(churn) + "/" + slug;
      json.Add(prefix + "/order_after_p1", order_after_p1, "fraction");
      json.Add(prefix + "/swaps", static_cast<double>(rs.swap_units),
               "swaps");
      json.Add(prefix + "/swap_log_bytes",
               static_cast<double>(
                   db->log_manager()->bytes_for_type(LogType::kReorgMove)),
               "bytes");
    }
    std::printf("\n");
  }
  std::printf(
      "expected shape: among the new-place policies, the paper heuristic "
      "needs\nclearly fewer pass-2 swaps (and less swap logging) than naive "
      "first-fit,\nbecause its constraint E in (L, C) keeps new leaves in "
      "relative key order.\nThe in-place-only reference trades those swaps "
      "for extra moves and gives up\nnew-place's concurrency advantages "
      "(\u00a76.1).\n");
  return json.Write() ? 0 : 1;
}
