// Read path — hot point reads with the optimistic (latch-free) path on vs
// off.
//
// A fully resident tree is probed with random point Gets. With
// optimistic_reads on, each hit is served from a version-validated private
// image without touching the lock manager, the shard mutex, or the pin
// count; with it off, every Get runs the Table-1 protocol (tree IS lock, S
// lock-couple to the leaf, pin/unpin). The ratio between the two is the
// whole point of the optimistic path: it must be comfortably above 1 even
// single-threaded, because the locked path's cost is lock-table and shard
// bookkeeping, not contention.
//
// Emits BENCH_read_path.json: hot_hit/optimistic, hot_hit/slock (Mops/s)
// and hot_hit/speedup (ratio). CI gates on the ratio, not the absolute
// numbers, so machine speed drops out.

#include <thread>

#include "bench/bench_util.h"

using namespace soreorg;
using namespace soreorg::bench;

namespace {

uint64_t g_n = 20000;       // records; tree stays far below the pool size
uint64_t g_ops = 400000;    // point Gets per measured run
int g_threads = 1;

struct RunResult {
  double mops = 0;
  uint64_t optimistic_gets = 0;
  uint64_t fallbacks = 0;
};

double RunOnce(Database* db, int threads, uint64_t ops) {
  std::vector<std::thread> workers;
  Timer t;
  for (int w = 0; w < threads; ++w) {
    workers.emplace_back([db, w, ops, threads]() {
      Random rng(1234 + static_cast<uint64_t>(w) * 7919);
      uint64_t per = ops / static_cast<uint64_t>(threads);
      std::string value;
      for (uint64_t i = 0; i < per; ++i) {
        uint64_t slot = rng.Uniform(g_n);
        Status s = db->Get(EncodeU64Key(slot * 10), &value);
        if (!s.ok() && !s.IsNotFound()) {
          std::fprintf(stderr, "get failed: %s\n", s.ToString().c_str());
          std::abort();
        }
      }
    });
  }
  for (auto& w : workers) w.join();
  return static_cast<double>(ops) / t.Seconds() / 1e6;
}

RunResult Measure(bool optimistic) {
  MemEnv env;
  DatabaseOptions options;
  options.buffer_pool_pages = 4096;  // whole working set resident
  options.optimistic_reads = optimistic;
  std::unique_ptr<Database> db;
  Status s = Database::Open(&env, options, &db);
  if (!s.ok()) {
    std::fprintf(stderr, "open failed: %s\n", s.ToString().c_str());
    std::abort();
  }
  s = LoadSparseTree(db.get(), g_n, 64, 0.9);
  if (!s.ok()) {
    std::fprintf(stderr, "load failed: %s\n", s.ToString().c_str());
    std::abort();
  }
  // Warm every page into the pool so the measured loop sees only hits.
  RunOnce(db.get(), 1, g_n);

  RunResult r;
  // Best-of-2 to shave scheduler noise, same policy as bench_buffer_pool.
  r.mops = std::max(RunOnce(db.get(), g_threads, g_ops),
                    RunOnce(db.get(), g_threads, g_ops));
  ReadPathStats st = db->tree()->read_path_stats();
  r.optimistic_gets = st.optimistic_gets;
  r.fallbacks = st.fallbacks;
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  Header("Read path: latch-free optimistic Gets vs the Table-1 S-lock path",
         "readers of a tree not under reorganization should pay nothing for "
         "the reorganizer's lock protocol; the optimistic path validates a "
         "version stamp instead of locking");

  JsonReporter json("bench_read_path", argc, argv);
  if (HasFlag(argc, argv, "--quick")) {
    g_n = 5000;
    g_ops = 80000;
  }
  if (const char* t = FlagValue(argc, argv, "--threads")) g_threads = atoi(t);
  if (const char* o = FlagValue(argc, argv, "--ops")) g_ops = strtoull(o, nullptr, 10);

  RunResult slock = Measure(/*optimistic=*/false);
  RunResult opt = Measure(/*optimistic=*/true);
  double speedup = opt.mops / slock.mops;

  std::printf("%-12s %12s %16s %10s\n", "path", "Mops/s", "optimistic gets",
              "fallbacks");
  std::printf("%-12s %12.2f %16llu %10llu\n", "s-lock", slock.mops,
              (unsigned long long)slock.optimistic_gets,
              (unsigned long long)slock.fallbacks);
  std::printf("%-12s %12.2f %16llu %10llu\n", "optimistic", opt.mops,
              (unsigned long long)opt.optimistic_gets,
              (unsigned long long)opt.fallbacks);
  std::printf("speedup: %.2fx\n", speedup);

  if (slock.optimistic_gets != 0) {
    std::fprintf(stderr, "optimistic path ran with optimistic_reads=false\n");
    return 1;
  }
  if (opt.optimistic_gets == 0) {
    std::fprintf(stderr, "optimistic path never engaged\n");
    return 1;
  }

  json.Add("hot_hit/optimistic", opt.mops, "Mops/s", g_threads);
  json.Add("hot_hit/slock", slock.mops, "Mops/s", g_threads);
  json.Add("hot_hit/speedup", speedup, "ratio", g_threads);
  json.Add("hot_hit/fallbacks", static_cast<double>(opt.fallbacks), "count",
           g_threads);
  return json.Write() ? 0 : 1;
}
