// Shared helpers for the experiment harnesses. Each bench binary prints the
// table/figure series it reproduces (see DESIGN.md §3 and EXPERIMENTS.md);
// absolute numbers are machine-dependent, the *shape* is what must match the
// paper's claims.

#ifndef SOREORG_BENCH_BENCH_UTIL_H_
#define SOREORG_BENCH_BENCH_UTIL_H_

#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "src/db/database.h"
#include "src/sim/crash_injector.h"
#include "src/sim/disk_model.h"
#include "src/sim/workload.h"
#include "src/util/coding.h"

namespace soreorg {
namespace bench {

struct Timer {
  std::chrono::steady_clock::time_point t0 = std::chrono::steady_clock::now();
  double Seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         t0)
        .count();
  }
};

/// A database holding `n` records sparsified by random deletion to roughly
/// (1 - delete_frac) of the original fill.
inline std::unique_ptr<Database> SparseDb(
    MemEnv* env, uint64_t n, double delete_frac, uint64_t seed,
    DatabaseOptions options = DatabaseOptions(),
    std::vector<uint64_t>* survivors = nullptr) {
  std::unique_ptr<Database> db;
  Status s = Database::Open(env, options, &db);
  if (!s.ok()) {
    std::fprintf(stderr, "open failed: %s\n", s.ToString().c_str());
    std::abort();
  }
  std::vector<uint64_t> local;
  s = SparsifyByDeletion(db.get(), n, 64, 0.95, delete_frac, 10, seed,
                         survivors ? survivors : &local);
  if (!s.ok()) {
    std::fprintf(stderr, "sparsify failed: %s\n", s.ToString().c_str());
    std::abort();
  }
  return db;
}

inline BTreeStats Shape(Database* db) {
  BTreeStats st;
  db->tree()->ComputeStats(&st);
  return st;
}

inline void Check(Database* db, const char* where) {
  Status s = db->tree()->CheckConsistency();
  if (!s.ok()) {
    std::fprintf(stderr, "CONSISTENCY FAILURE at %s: %s\n", where,
                 s.ToString().c_str());
    std::abort();
  }
}

inline void Header(const char* title, const char* paper_claim) {
  std::printf("\n=== %s ===\n", title);
  std::printf("paper: %s\n\n", paper_claim);
}

}  // namespace bench
}  // namespace soreorg

#endif  // SOREORG_BENCH_BENCH_UTIL_H_
