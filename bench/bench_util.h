// Shared helpers for the experiment harnesses. Each bench binary prints the
// table/figure series it reproduces (see DESIGN.md §3 and EXPERIMENTS.md);
// absolute numbers are machine-dependent, the *shape* is what must match the
// paper's claims.

#ifndef SOREORG_BENCH_BENCH_UTIL_H_
#define SOREORG_BENCH_BENCH_UTIL_H_

#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "src/db/database.h"
#include "src/sim/crash_injector.h"
#include "src/sim/disk_model.h"
#include "src/sim/workload.h"
#include "src/util/coding.h"

namespace soreorg {
namespace bench {

struct Timer {
  std::chrono::steady_clock::time_point t0 = std::chrono::steady_clock::now();
  double Seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         t0)
        .count();
  }
};

/// A database holding `n` records sparsified by random deletion to roughly
/// (1 - delete_frac) of the original fill.
inline std::unique_ptr<Database> SparseDb(
    MemEnv* env, uint64_t n, double delete_frac, uint64_t seed,
    DatabaseOptions options = DatabaseOptions(),
    std::vector<uint64_t>* survivors = nullptr) {
  std::unique_ptr<Database> db;
  Status s = Database::Open(env, options, &db);
  if (!s.ok()) {
    std::fprintf(stderr, "open failed: %s\n", s.ToString().c_str());
    std::abort();
  }
  std::vector<uint64_t> local;
  s = SparsifyByDeletion(db.get(), n, 64, 0.95, delete_frac, 10, seed,
                         survivors ? survivors : &local);
  if (!s.ok()) {
    std::fprintf(stderr, "sparsify failed: %s\n", s.ToString().c_str());
    std::abort();
  }
  return db;
}

inline BTreeStats Shape(Database* db) {
  BTreeStats st;
  db->tree()->ComputeStats(&st);
  return st;
}

inline void Check(Database* db, const char* where) {
  Status s = db->tree()->CheckConsistency();
  if (!s.ok()) {
    std::fprintf(stderr, "CONSISTENCY FAILURE at %s: %s\n", where,
                 s.ToString().c_str());
    std::abort();
  }
}

inline void Header(const char* title, const char* paper_claim) {
  std::printf("\n=== %s ===\n", title);
  std::printf("paper: %s\n\n", paper_claim);
}

// --- machine-readable bench output ----------------------------------------
//
// Every bench binary accepts --json=<path>; metrics recorded through a
// JsonReporter land there as {bench, git_rev, metrics:[{name, value, unit,
// threads}]} so the perf trajectory is diffable across PRs (the repo root
// keeps BENCH_*.json snapshots). Absolute values remain machine-dependent;
// the JSON makes regressions visible, it does not promise portable numbers.

#ifndef SOREORG_GIT_REV
#define SOREORG_GIT_REV "unknown"
#endif

/// --flag=value argv lookup; returns nullptr when absent.
inline const char* FlagValue(int argc, char** argv, const char* flag) {
  size_t len = std::strlen(flag);
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], flag, len) == 0 && argv[i][len] == '=') {
      return argv[i] + len + 1;
    }
  }
  return nullptr;
}

inline bool HasFlag(int argc, char** argv, const char* flag) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return true;
  }
  return false;
}

class JsonReporter {
 public:
  /// Parses --json=<path> from argv; with no flag the reporter is inert.
  JsonReporter(const char* bench_name, int argc, char** argv)
      : bench_name_(bench_name) {
    const char* path = FlagValue(argc, argv, "--json");
    if (path != nullptr) path_ = path;
  }

  void Add(const std::string& name, double value, const std::string& unit,
           int threads = 0) {
    metrics_.push_back(Metric{name, value, unit, threads});
  }

  /// Writes the file (call once, at the end of main). Returns false on I/O
  /// failure so CI can fail the smoke job.
  bool Write() const {
    if (path_.empty()) return true;
    std::FILE* f = std::fopen(path_.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", path_.c_str());
      return false;
    }
    std::fprintf(f, "{\n  \"bench\": \"%s\",\n  \"git_rev\": \"%s\",\n",
                 bench_name_.c_str(), SOREORG_GIT_REV);
    std::fprintf(f, "  \"metrics\": [\n");
    for (size_t i = 0; i < metrics_.size(); ++i) {
      const Metric& m = metrics_[i];
      std::fprintf(f,
                   "    {\"name\": \"%s\", \"value\": %.6g, \"unit\": \"%s\", "
                   "\"threads\": %d}%s\n",
                   m.name.c_str(), m.value, m.unit.c_str(), m.threads,
                   i + 1 < metrics_.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("json written to %s\n", path_.c_str());
    return true;
  }

 private:
  struct Metric {
    std::string name;
    double value;
    std::string unit;
    int threads;
  };

  std::string bench_name_;
  std::string path_;
  std::vector<Metric> metrics_;
};

}  // namespace bench
}  // namespace soreorg

#endif  // SOREORG_BENCH_BENCH_UTIL_H_
