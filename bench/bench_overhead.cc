// E7 — §8's granularity and transaction-overhead claims:
//   * "No matter what the new page fill factor is, each transaction in
//     [Smith '90] will only deal with two blocks ... In our method, if we do
//     in-place compaction, we may compact several pages into one."
//   * "[Smith '90] uses one transaction for each reorganization operation
//     ... In our method, the reorganizer runs in the background as one
//     process. So there is less transaction overhead."

#include "bench/bench_util.h"
#include "src/baseline/smith_reorg.h"

using namespace soreorg;
using namespace soreorg::bench;

int main(int argc, char** argv) {
  Header("E7: unit granularity and transaction overhead (§8 vs Smith '90)",
         "Smith: 2 blocks per operation, one transaction each; paper: "
         "d = ceil(f2/f1) pages per unit, one background process, no "
         "commit per unit");
  JsonReporter json("bench_overhead", argc, argv);

  const uint64_t kN = 30000;
  std::printf("%-10s %-10s %10s %10s %12s %12s %14s %12s\n", "sparsity",
              "method", "units", "txns", "commits", "lock acqs",
              "log records", "log bytes");

  for (double del : {0.6, 0.8}) {
    char prefix[32];
    std::snprintf(prefix, sizeof(prefix), "e7/del%.0f", del * 100);
    // Paper method (compaction only, for apples-to-apples with merges).
    {
      MemEnv env;
      DatabaseOptions options;
      options.reorg.run_swap_pass = false;
      options.reorg.run_internal_pass = false;
      auto db = SparseDb(&env, kN, del, 3, options);
      db->lock_manager()->ResetStats();
      db->log_manager()->ResetStats();
      uint64_t commits_before = db->txn_manager()->commits();
      db->Reorganize();
      Check(db.get(), "paper");
      const ReorgStats& rs = db->reorganizer()->stats();
      std::printf("f1=%-7.2f %-10s %10llu %10u %12llu %12llu %14llu %12llu\n",
                  (1 - del) * 0.95, "paper", (unsigned long long)rs.units, 0,
                  (unsigned long long)(db->txn_manager()->commits() -
                                       commits_before),
                  (unsigned long long)db->lock_manager()->stats().acquisitions,
                  (unsigned long long)db->log_manager()->records_appended(),
                  (unsigned long long)db->log_manager()->bytes_appended());
      json.Add(std::string(prefix) + "/paper/units",
               static_cast<double>(rs.units), "units");
      json.Add(std::string(prefix) + "/paper/commits",
               static_cast<double>(db->txn_manager()->commits() -
                                   commits_before),
               "commits");
      json.Add(std::string(prefix) + "/paper/lock_acqs",
               static_cast<double>(db->lock_manager()->stats().acquisitions),
               "locks");
      json.Add(std::string(prefix) + "/paper/log_bytes",
               static_cast<double>(db->log_manager()->bytes_appended()),
               "bytes");
    }
    // Smith baseline (merges only).
    {
      MemEnv env;
      auto db = SparseDb(&env, kN, del, 3);
      db->lock_manager()->ResetStats();
      db->log_manager()->ResetStats();
      uint64_t commits_before = db->txn_manager()->commits();
      SmithReorganizer smith(db->tree(), db->buffer_pool(),
                             db->log_manager(), db->lock_manager(),
                             db->disk_manager(), db->reorg_table(),
                             db->txn_manager(),
                             SmithOptions{.target_fill = 0.9,
                                          .do_ordering_pass = false});
      smith.Run();
      Check(db.get(), "smith");
      std::printf("f1=%-7.2f %-10s %10llu %10llu %12llu %12llu %14llu %12llu\n",
                  (1 - del) * 0.95, "Smith '90",
                  (unsigned long long)smith.unit_stats().units,
                  (unsigned long long)smith.stats().transactions,
                  (unsigned long long)(db->txn_manager()->commits() -
                                       commits_before),
                  (unsigned long long)db->lock_manager()->stats().acquisitions,
                  (unsigned long long)db->log_manager()->records_appended(),
                  (unsigned long long)db->log_manager()->bytes_appended());
      json.Add(std::string(prefix) + "/smith/units",
               static_cast<double>(smith.unit_stats().units), "units");
      json.Add(std::string(prefix) + "/smith/commits",
               static_cast<double>(db->txn_manager()->commits() -
                                   commits_before),
               "commits");
      json.Add(std::string(prefix) + "/smith/lock_acqs",
               static_cast<double>(db->lock_manager()->stats().acquisitions),
               "locks");
      json.Add(std::string(prefix) + "/smith/log_bytes",
               static_cast<double>(db->log_manager()->bytes_appended()),
               "bytes");
    }
    std::printf("\n");
  }
  std::printf("expected shape: Smith needs several times more units (2-block "
              "granularity),\none commit per unit, more lock acquisitions, "
              "and a larger log (full-content\nMOVE records).\n");
  return json.Write() ? 0 : 1;
}
