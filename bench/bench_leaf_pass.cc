// F2 — Figure 2: the leaf-reorganization main loop. Shows how
// Find-Free-Space steers each unit between Copying-Switching (new-place)
// and In-Place-Reorg, across free-space layouts and f2 targets.

#include "bench/bench_util.h"

using namespace soreorg;
using namespace soreorg::bench;

int main(int argc, char** argv) {
  Header("F2: leaf-pass main loop (Figure 2)",
         "\"Find-Free-Space will see if there is a good empty page ... If "
         "so, we call Copying-Switching ... If not, In-Place-Reorg is "
         "called\"; on average d = ceil(f2/f1) pages compact per unit");
  JsonReporter json("bench_leaf_pass", argc, argv);

  const uint64_t kN = 30000;
  int scenario_idx = 0;

  std::printf("%-34s %8s %8s %8s %10s %12s\n", "scenario", "units",
              "in-place", "copy-sw", "d (avg)", "rec moved");
  struct Scenario {
    const char* name;
    double cluster_del;  // empties whole leaves => free pages (holes)
    double random_del;   // leaves survivors sparse
    double f2;
  };
  for (const Scenario& sc :
       {Scenario{"many holes, sparse, f2=0.9", 0.4, 0.5, 0.9},
        Scenario{"few holes, sparse, f2=0.9", 0.05, 0.55, 0.9},
        Scenario{"many holes, sparse, f2=0.6", 0.4, 0.5, 0.6},
        Scenario{"many holes, very sparse, f2=0.9", 0.3, 0.75, 0.9}}) {
    MemEnv env;
    DatabaseOptions options;
    options.reorg.compactor.target_fill = sc.f2;
    std::unique_ptr<Database> db;
    Database::Open(&env, options, &db);
    AgingOptions aging;
    aging.n = kN;
    aging.cluster_delete_frac = sc.cluster_del;
    aging.random_delete_frac = sc.random_del;
    aging.churn_inserts = 1000;
    aging.seed = 11;
    std::vector<uint64_t> survivors;
    AgeDatabase(db.get(), aging, &survivors);
    BTreeStats before = Shape(db.get());
    db->reorganizer()->RunLeafPass();
    Check(db.get(), sc.name);
    BTreeStats after = Shape(db.get());
    const ReorgStats& rs = db->reorganizer()->stats();
    double d = rs.units ? static_cast<double>(before.leaf_pages -
                                              after.leaf_pages + rs.units) /
                              static_cast<double>(rs.units)
                        : 0.0;
    std::printf("%-34s %8llu %8llu %8llu %10.1f %12llu\n", sc.name,
                (unsigned long long)rs.units,
                (unsigned long long)rs.compact_units,
                (unsigned long long)rs.move_units, d,
                (unsigned long long)rs.records_moved);

    std::string prefix = "f2/scenario" + std::to_string(scenario_idx++);
    json.Add(prefix + "/units", static_cast<double>(rs.units), "units");
    json.Add(prefix + "/in_place", static_cast<double>(rs.compact_units),
             "units");
    json.Add(prefix + "/copy_switch", static_cast<double>(rs.move_units),
             "units");
    json.Add(prefix + "/d_avg", d, "pages/unit");
    json.Add(prefix + "/records_moved", static_cast<double>(rs.records_moved),
             "records");
  }
  std::printf("\nexpected shape: more holes => more copy-switch units; "
              "lower f1 (sparser) => larger d per unit.\n");
  return json.Write() ? 0 : 1;
}
