// E3 — §5's claim: with careful writing enforced by the buffer manager,
// MOVE records can carry "only the keys of records" instead of the record
// contents, shrinking the reorganization log; swaps can never avoid logging
// at least one full page image.

#include "bench/bench_util.h"

using namespace soreorg;
using namespace soreorg::bench;

namespace {

struct LogBreakdown {
  uint64_t move_bytes = 0;
  uint64_t modify_bytes = 0;
  uint64_t unit_bytes = 0;  // BEGIN/END
  uint64_t total_bytes = 0;
  uint64_t records_moved = 0;
};

LogBreakdown MeasurePass1(bool careful, uint64_t n, double del,
                          size_t value_size) {
  MemEnv env;
  DatabaseOptions options;
  options.reorg.careful_writing = careful;
  std::unique_ptr<Database> db;
  Database::Open(&env, options, &db);
  std::vector<uint64_t> survivors;
  SparsifyByDeletion(db.get(), n, value_size, 0.95, del, 10, 5, &survivors);
  db->log_manager()->ResetStats();
  db->reorganizer()->RunLeafPass();
  Check(db.get(), "E3");
  LogBreakdown b;
  LogManager* log = db->log_manager();
  b.move_bytes = log->bytes_for_type(LogType::kReorgMove);
  b.modify_bytes = log->bytes_for_type(LogType::kReorgModify);
  b.unit_bytes = log->bytes_for_type(LogType::kReorgBegin) +
                 log->bytes_for_type(LogType::kReorgEnd);
  b.total_bytes = log->bytes_appended();
  b.records_moved = db->reorganizer()->stats().records_moved;
  return b;
}

}  // namespace

int main() {
  Header("E3: reorganization log volume (§5, careful writing)",
         "\"Instead of record content, we could use only the keys of records "
         "if careful writing by the buffer manager is enforced\" — and swaps "
         "must log at least one full page image");

  std::printf("pass-1 log bytes, 20000 records, 70%% deleted, by value "
              "size:\n");
  std::printf("%-10s %-16s %12s %12s %12s %14s\n", "value", "mode", "MOVE B",
              "MODIFY B", "total B", "B/record moved");
  for (size_t vs : {16, 64, 256}) {
    for (bool careful : {true, false}) {
      LogBreakdown b = MeasurePass1(careful, 20000, 0.7, vs);
      std::printf("%-10zu %-16s %12llu %12llu %12llu %14.1f\n", vs,
                  careful ? "keys-only" : "full records",
                  (unsigned long long)b.move_bytes,
                  (unsigned long long)b.modify_bytes,
                  (unsigned long long)b.total_bytes,
                  b.records_moved
                      ? static_cast<double>(b.move_bytes) / b.records_moved
                      : 0.0);
    }
  }

  // Swap vs move logging: run pass 2 under the no-new-place policy (all
  // swaps) vs the heuristic (mostly moves) and compare bytes per unit.
  std::printf("\npass-2 log bytes per unit (20000 records, 70%% deleted):\n");
  std::printf("%-22s %8s %8s %16s\n", "policy", "swaps", "moves",
              "MOVE bytes/unit");
  for (auto policy : {FreeSpacePolicy::kPaperHeuristic,
                      FreeSpacePolicy::kNone}) {
    MemEnv env;
    DatabaseOptions options;
    options.reorg.compactor.free_space_policy = policy;
    std::unique_ptr<Database> db;
    Database::Open(&env, options, &db);
    std::vector<uint64_t> survivors;
    AgingOptions aging;
    aging.n = 20000;
    aging.churn_inserts = 3000;
    aging.seed = 5;
    AgeDatabase(db.get(), aging, &survivors);
    db->reorganizer()->RunLeafPass();
    uint64_t p1_units = db->reorganizer()->stats().units;
    db->log_manager()->ResetStats();
    db->reorganizer()->RunSwapPass();
    Check(db.get(), "E3 pass 2");
    const ReorgStats& rs = db->reorganizer()->stats();
    uint64_t p2_units = rs.units - p1_units;
    std::printf("%-22s %8llu %8llu %16.0f\n",
                policy == FreeSpacePolicy::kNone ? "no new-place (swaps)"
                                                 : "paper heuristic",
                (unsigned long long)rs.swap_units,
                (unsigned long long)(p2_units - rs.swap_units),
                p2_units ? static_cast<double>(db->log_manager()
                                                   ->bytes_for_type(
                                                       LogType::kReorgMove)) /
                               p2_units
                         : 0.0);
  }
  std::printf("\nexpected shape: keys-only MOVE records are several times "
              "smaller than\nfull-record ones (ratio grows with value "
              "size); swap units log a whole\npage image each, dwarfing "
              "keys-only moves.\n");
  return 0;
}
