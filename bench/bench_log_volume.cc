// E3 — §5's claim: with careful writing enforced by the buffer manager,
// MOVE records can carry "only the keys of records" instead of the record
// contents, shrinking the reorganization log; swaps can never avoid logging
// at least one full page image.
//
// Plus P2 — WAL group commit: N threads doing AppendAndFlush should share
// flush leaders' fsyncs, so syncs-per-commit drops well below 1 sync each.

#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"

using namespace soreorg;
using namespace soreorg::bench;

namespace {

struct LogBreakdown {
  uint64_t move_bytes = 0;
  uint64_t modify_bytes = 0;
  uint64_t unit_bytes = 0;  // BEGIN/END
  uint64_t total_bytes = 0;
  uint64_t records_moved = 0;
};

LogBreakdown MeasurePass1(bool careful, uint64_t n, double del,
                          size_t value_size) {
  MemEnv env;
  DatabaseOptions options;
  options.reorg.careful_writing = careful;
  std::unique_ptr<Database> db;
  Database::Open(&env, options, &db);
  std::vector<uint64_t> survivors;
  SparsifyByDeletion(db.get(), n, value_size, 0.95, del, 10, 5, &survivors);
  db->log_manager()->ResetStats();
  db->reorganizer()->RunLeafPass();
  Check(db.get(), "E3");
  LogBreakdown b;
  LogManager* log = db->log_manager();
  b.move_bytes = log->bytes_for_type(LogType::kReorgMove);
  b.modify_bytes = log->bytes_for_type(LogType::kReorgModify);
  b.unit_bytes = log->bytes_for_type(LogType::kReorgBegin) +
                 log->bytes_for_type(LogType::kReorgEnd);
  b.total_bytes = log->bytes_appended();
  b.records_moved = db->reorganizer()->stats().records_moved;
  return b;
}

// Group-commit probe: `threads` committers each AppendAndFlush
// `commits_per_thread` records against one LogManager. Returns commits/sec
// and the observed fsyncs-per-commit (MemEnv sync counter / total commits).
struct GroupCommitResult {
  double commits_per_sec = 0;
  double syncs_per_commit = 0;
  uint64_t sync_batches = 0;
};

GroupCommitResult MeasureGroupCommit(int threads, int commits_per_thread) {
  MemEnv env;
  LogManager log(&env, "wal");
  if (!log.Open().ok()) return {};
  std::vector<std::thread> workers;
  Timer t;
  for (int w = 0; w < threads; ++w) {
    workers.emplace_back([&log, w, commits_per_thread] {
      for (int i = 0; i < commits_per_thread; ++i) {
        LogRecord rec;
        rec.type = LogType::kCommit;
        rec.txn_id = static_cast<TxnId>(100 + w);
        rec.key = "k" + std::to_string(i);
        log.AppendAndFlush(&rec);
      }
    });
  }
  for (auto& w : workers) w.join();
  double secs = t.Seconds();
  GroupCommitResult r;
  double commits = static_cast<double>(threads) * commits_per_thread;
  r.commits_per_sec = commits / secs;
  r.syncs_per_commit = static_cast<double>(env.sync_count()) / commits;
  r.sync_batches = log.sync_batches();
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  bench::JsonReporter json("bench_log_volume", argc, argv);
  const bool quick = bench::HasFlag(argc, argv, "--quick");

  Header("E3: reorganization log volume (§5, careful writing)",
         "\"Instead of record content, we could use only the keys of records "
         "if careful writing by the buffer manager is enforced\" — and swaps "
         "must log at least one full page image");

  const uint64_t kN = quick ? 4000 : 20000;
  std::printf("pass-1 log bytes, %llu records, 70%% deleted, by value "
              "size:\n",
              (unsigned long long)kN);
  std::printf("%-10s %-16s %12s %12s %12s %14s\n", "value", "mode", "MOVE B",
              "MODIFY B", "total B", "B/record moved");
  for (size_t vs : {16, 64, 256}) {
    for (bool careful : {true, false}) {
      LogBreakdown b = MeasurePass1(careful, kN, 0.7, vs);
      double bytes_per_move =
          b.records_moved
              ? static_cast<double>(b.move_bytes) / b.records_moved
              : 0.0;
      std::printf("%-10zu %-16s %12llu %12llu %12llu %14.1f\n", vs,
                  careful ? "keys-only" : "full records",
                  (unsigned long long)b.move_bytes,
                  (unsigned long long)b.modify_bytes,
                  (unsigned long long)b.total_bytes, bytes_per_move);
      if (vs == 64) {
        json.Add(careful ? "move_bytes_per_record_keys_only_v64"
                         : "move_bytes_per_record_full_v64",
                 bytes_per_move, "bytes/record", 1);
      }
    }
  }

  // Swap vs move logging: run pass 2 under the no-new-place policy (all
  // swaps) vs the heuristic (mostly moves) and compare bytes per unit.
  std::printf("\npass-2 log bytes per unit (%llu records, 70%% deleted):\n",
              (unsigned long long)kN);
  std::printf("%-22s %8s %8s %16s\n", "policy", "swaps", "moves",
              "MOVE bytes/unit");
  for (auto policy : {FreeSpacePolicy::kPaperHeuristic,
                      FreeSpacePolicy::kNone}) {
    MemEnv env;
    DatabaseOptions options;
    options.reorg.compactor.free_space_policy = policy;
    std::unique_ptr<Database> db;
    Database::Open(&env, options, &db);
    std::vector<uint64_t> survivors;
    AgingOptions aging;
    aging.n = kN;
    aging.churn_inserts = quick ? 600 : 3000;
    aging.seed = 5;
    AgeDatabase(db.get(), aging, &survivors);
    db->reorganizer()->RunLeafPass();
    uint64_t p1_units = db->reorganizer()->stats().units;
    db->log_manager()->ResetStats();
    db->reorganizer()->RunSwapPass();
    Check(db.get(), "E3 pass 2");
    const ReorgStats& rs = db->reorganizer()->stats();
    uint64_t p2_units = rs.units - p1_units;
    std::printf("%-22s %8llu %8llu %16.0f\n",
                policy == FreeSpacePolicy::kNone ? "no new-place (swaps)"
                                                 : "paper heuristic",
                (unsigned long long)rs.swap_units,
                (unsigned long long)(p2_units - rs.swap_units),
                p2_units ? static_cast<double>(db->log_manager()
                                                   ->bytes_for_type(
                                                       LogType::kReorgMove)) /
                               p2_units
                         : 0.0);
  }
  std::printf("\nexpected shape: keys-only MOVE records are several times "
              "smaller than\nfull-record ones (ratio grows with value "
              "size); swap units log a whole\npage image each, dwarfing "
              "keys-only moves.\n");

  // P2 — group commit: concurrent committers share the flush leader's fsync.
  const char* threads_flag = bench::FlagValue(argc, argv, "--threads");
  const int kThreads = threads_flag ? std::atoi(threads_flag) : 4;
  const int kCommits = quick ? 200 : 2000;
  std::printf("\nWAL group commit, AppendAndFlush per-commit durability:\n");
  std::printf("%-10s %10s %14s %16s %14s\n", "threads", "commits",
              "commits/sec", "syncs/commit", "sync batches");
  for (int threads : {1, kThreads}) {
    GroupCommitResult r = MeasureGroupCommit(threads, kCommits);
    std::printf("%-10d %10d %14.0f %16.3f %14llu\n", threads,
                threads * kCommits, r.commits_per_sec, r.syncs_per_commit,
                (unsigned long long)r.sync_batches);
    json.Add("group_commit_commits_per_sec_t" + std::to_string(threads),
             r.commits_per_sec, "commits/sec", threads);
    json.Add("group_commit_syncs_per_commit_t" + std::to_string(threads),
             r.syncs_per_commit, "syncs/commit", threads);
  }
  std::printf("\nexpected shape: at 1 thread every commit pays its own "
              "fsync\n(syncs/commit == 1); with concurrent committers the "
              "leader batches\nfollowers when fsync is slow enough for a "
              "queue to form. MemEnv's sync\nis a memcpy, so on one core "
              "leaders drain faster than followers arrive\nand "
              "syncs/commit stays near 1 — see the deterministic probe "
              "below for\nthe batching itself.\n");

  // Deterministic batching probe: buffer N records with Append (no flush),
  // then have N threads demand durability concurrently. One leader steals
  // the whole buffer — N commits, 1 fsync.
  {
    MemEnv env;
    LogManager log(&env, "wal");
    log.Open();
    const int kBuffered = 8;
    std::vector<Lsn> lsns;
    for (int i = 0; i < kBuffered; ++i) {
      LogRecord rec;
      rec.type = LogType::kCommit;
      rec.txn_id = static_cast<TxnId>(100 + i);
      log.Append(&rec);
      lsns.push_back(rec.lsn);
    }
    uint64_t syncs_before = env.sync_count();
    std::vector<std::thread> flushers;
    for (Lsn lsn : lsns) {
      flushers.emplace_back([&log, lsn] { log.FlushTo(lsn); });
    }
    for (auto& f : flushers) f.join();
    uint64_t syncs = env.sync_count() - syncs_before;
    std::printf("\n%d buffered commits flushed by %d concurrent threads: "
                "%llu fsync(s)\n",
                kBuffered, kBuffered, (unsigned long long)syncs);
    json.Add("batched_flush_fsyncs_for_8_commits",
             static_cast<double>(syncs), "fsyncs", kBuffered);
  }
  // Segmented WAL (ISSUE 10): rotation/recycle/truncation counters for a
  // checkpointed load + reorganize stream on 64 KiB segments. The shape to
  // expect: many segments created while loading, most of them truncated at
  // the checkpoints, later rotations served from the recycle pool.
  {
    MemEnv env;
    DatabaseOptions options;
    options.wal_segment_bytes = 64 * 1024;
    std::unique_ptr<Database> db;
    Database::Open(&env, options, &db);
    std::vector<uint64_t> survivors;
    SparsifyByDeletion(db.get(), quick ? 3000 : 12000, 64, 0.95, 0.6, 10, 7,
                       &survivors);
    db->Checkpoint();
    db->Reorganize();
    Check(db.get(), "segment counters");
    db->Checkpoint();
    LogManager* log = db->log_manager();
    std::printf("\nsegmented WAL (64 KiB segments), load + checkpoint + "
                "reorganize + checkpoint:\n");
    std::printf("%-22s %10llu\n%-22s %10llu\n%-22s %10llu\n%-22s %10zu\n"
                "%-22s %10zu\n",
                "segments created",
                (unsigned long long)log->segments_created(),
                "segments recycled",
                (unsigned long long)log->segments_recycled(),
                "segments truncated",
                (unsigned long long)log->segments_truncated(),
                "segments live", log->segment_count(), "recycle pool",
                log->recycle_pool_size());
    json.Add("wal_segments_created",
             static_cast<double>(log->segments_created()), "segments");
    json.Add("wal_segments_recycled",
             static_cast<double>(log->segments_recycled()), "segments");
    json.Add("wal_segments_truncated",
             static_cast<double>(log->segments_truncated()), "segments");
    json.Add("wal_segments_live", static_cast<double>(log->segment_count()),
             "segments");
  }
  return json.Write() ? 0 : 1;
}
