// T1 — Table 1 of the paper: the lock compatibility matrix, reproduced from
// the LIVE lock manager (probed with real lock requests, not just the static
// table), plus microbenchmarks of the three new-mode code paths.

#include <chrono>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "src/txn/lock_manager.h"

using namespace soreorg;

namespace {

const LockMode kGrantedModes[] = {LockMode::kIS, LockMode::kIX, LockMode::kS,
                                  LockMode::kX, LockMode::kR, LockMode::kRX};
const LockMode kRequestedModes[] = {LockMode::kIS, LockMode::kIX,
                                    LockMode::kS,  LockMode::kX,
                                    LockMode::kR,  LockMode::kRX,
                                    LockMode::kRS};

// Probe compatibility with real requests: T1 holds `granted`, T2 requests
// `requested` with TryLock / a timed instant request.
const char* Probe(LockMode granted, LockMode requested) {
  LockManager lm;
  LockName n = PageLock(1);
  if (!lm.Lock(100, n, granted).ok()) return "?";
  Status s;
  if (requested == LockMode::kRS) {
    s = lm.LockInstant(200, n, LockMode::kRS, /*timeout_ms=*/20);
    return s.ok() ? "yes" : "no";
  }
  s = lm.TryLock(200, n, requested);
  if (s.ok()) return "yes";
  if (s.IsBackoff()) return "no*";  // the RX back-off path, not a queue wait
  return "no";
}

}  // namespace

// P2 — multi-thread acquire/release on disjoint names: each thread owns a
// private key range, so with a striped table the only remaining contention
// is accidental stripe collision. Reported for stripe counts 1 (the legacy
// single-mutex manager) and 16 (the default) — the ratio is the striping
// win. On a single core this measures overhead parity, not scaling (see
// EXPERIMENTS.md P2).
double DisjointOpsPerSec(size_t stripes, int threads, int ops_per_thread) {
  LockManager lm{stripes};
  std::vector<std::thread> workers;
  bench::Timer t;
  for (int w = 0; w < threads; ++w) {
    workers.emplace_back([&lm, w, ops_per_thread] {
      TxnId txn = 100 + w;
      uint32_t base = static_cast<uint32_t>(w) * 1000000u;
      for (int i = 0; i < ops_per_thread; ++i) {
        LockName n = PageLock(base + static_cast<uint32_t>(i % 512));
        lm.Lock(txn, n, LockMode::kX);
        lm.Unlock(txn, n);
      }
    });
  }
  for (auto& w : workers) w.join();
  return static_cast<double>(threads) * ops_per_thread / t.Seconds();
}

int main(int argc, char** argv) {
  bench::JsonReporter json("bench_lock_table", argc, argv);
  const char* threads_flag = bench::FlagValue(argc, argv, "--threads");
  const char* ops_flag = bench::FlagValue(argc, argv, "--ops");
  const int kThreads = threads_flag ? std::atoi(threads_flag) : 4;
  const int kOps = ops_flag ? std::atoi(ops_flag) : 20000;

  bench::Header("T1: lock compatibility (Table 1)",
                "R compatible with S; RX incompatible with everything and "
                "conflicting requesters back off; RS is instant-duration and "
                "incompatible with R/X/RX");

  std::printf("%-8s", "granted");
  for (LockMode req : kRequestedModes) std::printf("%6s", LockModeName(req));
  std::printf("\n");
  bool all_match = true;
  for (LockMode g : kGrantedModes) {
    std::printf("%-8s", LockModeName(g));
    for (LockMode req : kRequestedModes) {
      const char* probed = Probe(g, req);
      bool probed_yes = probed[0] == 'y';
      if (probed_yes != LockCompatible(g, req)) all_match = false;
      std::printf("%6s", probed);
    }
    std::printf("\n");
  }
  std::printf("\n(no* = request rejected via the RX back-off protocol, not "
              "queued)\nlive probes match the static Table 1: %s\n",
              all_match ? "YES" : "NO — MISMATCH");

  // Microbenchmarks of the new-mode paths.
  std::printf("\nlock-path microbenchmarks (1e5 iterations each):\n");
  auto time_path = [](const char* name, auto&& fn) {
    const int kIters = 100000;
    auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < kIters; ++i) fn();
    double ns = std::chrono::duration<double, std::nano>(
                    std::chrono::steady_clock::now() - t0)
                    .count() /
                kIters;
    std::printf("  %-34s %8.0f ns/op\n", name, ns);
  };
  {
    LockManager lm;
    time_path("uncontended S lock+unlock", [&]() {
      lm.Lock(1, PageLock(7), LockMode::kS);
      lm.Unlock(1, PageLock(7));
    });
  }
  {
    LockManager lm;
    const int kIters = 100000;
    auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < kIters; ++i) {
      lm.Lock(1, PageLock(7), LockMode::kS);
      lm.Unlock(1, PageLock(7));
    }
    double ns = std::chrono::duration<double, std::nano>(
                    std::chrono::steady_clock::now() - t0)
                    .count() /
                kIters;
    json.Add("uncontended_lock_unlock_ns", ns, "ns/op", 1);
  }
  {
    LockManager lm;
    lm.Lock(kReorgTxnId, PageLock(7), LockMode::kRX);
    time_path("RX-conflict back-off (reader)", [&]() {
      lm.Lock(2, PageLock(7), LockMode::kS);  // returns kBackoff
    });
  }
  {
    LockManager lm;
    time_path("grantable instant-duration RS", [&]() {
      lm.LockInstant(2, PageLock(8), LockMode::kRS);
    });
  }
  {
    LockManager lm;
    time_path("R lock + upgrade to X + release", [&]() {
      lm.Lock(kReorgTxnId, PageLock(9), LockMode::kR);
      lm.Lock(kReorgTxnId, PageLock(9), LockMode::kX);
      lm.Unlock(kReorgTxnId, PageLock(9));
    });
  }

  // P2 — striped table under multi-thread disjoint-name churn.
  std::printf("\nstriped lock table, %d threads x %d X-lock/unlock ops on "
              "disjoint names:\n",
              kThreads, kOps);
  for (size_t stripes : {size_t{1}, size_t{16}}) {
    double ops = DisjointOpsPerSec(stripes, kThreads, kOps);
    std::printf("  stripes=%-3zu %12.0f ops/sec\n", stripes, ops);
    json.Add("disjoint_xlock_ops_per_sec_stripes" + std::to_string(stripes),
             ops, "ops/sec", kThreads);
  }
  return json.Write() ? 0 : 1;
}
