// YCSB-style percentile benchmark for the partitioned serving layer.
//
// Three mixes over a scrambled-zipfian key popularity (theta 0.99):
//   read_heavy — 95% Get / 5% Update            (YCSB-B shape)
//   rmw        — 50% Get / 50% ReadModifyWrite  (YCSB-F shape)
//   scan       — 95% short Scan (<=50 records) / 5% Update  (YCSB-E shape)
//
// Each (mix, partitions) cell loads a fresh sparse database (bulk load at
// fill 0.5, so the reorganizer has real work), then measures two phases:
//   quiesced — no reorganization running;
//   active   — the measurement window exactly spans a synchronous
//              ReorganizeAll() on the same data.
// Reported per cell: throughput and p50/p99/p999 latency (log-bucket
// histogram, ~1.6% resolution).
//
// The driver is a synchronous closed loop. With nothing queued the
// executor's inline fast path serves each op on the calling thread (see
// executor.h) — the serving layer's admission machinery only costs anything
// once there is backlog, which is what keeps the partitions=1 overhead
// within the 10% bound. Latency is call-to-return, i.e. it includes any
// queue wait — the number a client would see.
//
// At partitions=1 the same mix also runs directly against a plain Database
// (no executor, no router) and the throughput overhead of the serving layer
// is reported — the acceptance bound is <= 10%.
//
// CI note: this container is 1-CPU, so multi-partition cells measure
// partitioning/executor *overhead and isolation*, not parallel speedup (see
// EXPERIMENTS.md P5). Absolute numbers are machine-dependent; the regression
// gate (scripts/check_ycsb_regression.py) only checks machine-normalized
// ratios from the same process.
//
// Flags: --quick  (small load, short phases, partitions {1,4})
//        --json=<path>
//        --ms=<n>     per-phase measurement time, default 800

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "src/db/partitioned_db.h"
#include "src/sim/workload.h"

namespace soreorg {
namespace {

using bench::JsonReporter;
using bench::Timer;

struct MixSpec {
  const char* name;
  double read_frac;
  double update_frac;
  double rmw_frac;
  double scan_frac;
};

constexpr MixSpec kMixes[] = {
    {"read_heavy", 0.95, 0.05, 0.0, 0.0},
    {"rmw", 0.50, 0.0, 0.50, 0.0},
    {"scan", 0.0, 0.05, 0.0, 0.95},
};

struct BenchConfig {
  uint64_t records = 20000;
  uint64_t key_stride = 10;
  size_t value_size = 64;
  int phase_ms = 800;
  uint64_t scan_len = 50;  // key-space span of a short scan
};

struct PhaseResult {
  uint64_t ops = 0;
  uint64_t failures = 0;
  double seconds = 0;
  uint64_t p50_ns = 0, p99_ns = 0, p999_ns = 0;
  double OpsPerSec() const { return seconds > 0 ? ops / seconds : 0; }
};

std::string ValueFor(uint64_t item, size_t size) {
  std::string v = "val-" + std::to_string(item) + "-";
  while (v.size() < size) v.push_back('x');
  v.resize(size);
  return v;
}

/// One op drawn from the mix, run synchronously (closed loop).
class MixDriver {
 public:
  MixDriver(PartitionedDatabase* pdb, Database* plain, const MixSpec& mix,
            const BenchConfig& cfg, uint64_t seed)
      : pdb_(pdb),
        plain_(plain),
        mix_(mix),
        cfg_(cfg),
        zipf_(cfg.records, ZipfianGenerator::kDefaultTheta, seed),
        rng_(seed * 31 + 7) {}

  /// Runs the mix until `stop` returns true; fills `out`.
  void Run(const std::function<bool()>& stop, PhaseResult* out) {
    LatencyHistogram hist;
    std::atomic<uint64_t> failures{0};
    uint64_t ops = 0;

    Timer timer;
    while (!stop()) {
      uint64_t item = zipf_.NextScrambled();
      std::string key = EncodeU64Key(item * cfg_.key_stride);
      double dice = static_cast<double>(rng_.Uniform(1000000)) / 1000000.0;

      if (dice < mix_.scan_frac) {
        RunScan(item, &hist, &failures);
      } else if (plain_ != nullptr) {
        RunPlainPointOp(dice, item, key, &hist, &failures);
      } else {
        RunServedPointOp(dice, item, key, &hist, &failures);
      }
      ++ops;
    }
    out->seconds = timer.Seconds();
    out->ops = ops;
    out->failures = failures.load();
    out->p50_ns = hist.Percentile(0.50);
    out->p99_ns = hist.Percentile(0.99);
    out->p999_ns = hist.Percentile(0.999);
  }

 private:
  void RunScan(uint64_t item, LatencyHistogram* hist,
               std::atomic<uint64_t>* failures) {
    std::string lo = EncodeU64Key(item * cfg_.key_stride);
    std::string hi = EncodeU64Key((item + cfg_.scan_len) * cfg_.key_stride);
    uint64_t seen = 0;
    auto cb = [&seen](const Slice&, const Slice&) {
      ++seen;
      return true;
    };
    auto t0 = std::chrono::steady_clock::now();
    Status s = plain_ != nullptr ? plain_->Scan(lo, hi, cb)
                                 : pdb_->Scan(lo, hi, cb);
    auto dt = std::chrono::duration_cast<std::chrono::nanoseconds>(
                  std::chrono::steady_clock::now() - t0)
                  .count();
    hist->Record(static_cast<uint64_t>(dt));
    if (!s.ok()) failures->fetch_add(1);
  }

  void RunServedPointOp(double dice, uint64_t item, const std::string& key,
                        LatencyHistogram* hist,
                        std::atomic<uint64_t>* failures) {
    auto t0 = std::chrono::steady_clock::now();
    Status s;
    if (dice < mix_.scan_frac + mix_.read_frac) {
      s = pdb_->Get(key, &value_buf_);
    } else if (dice < mix_.scan_frac + mix_.read_frac + mix_.rmw_frac) {
      s = pdb_->ReadModifyWrite(key, [](const std::string& cur) {
        std::string next = cur;
        if (!next.empty()) next[0] = static_cast<char>(next[0] + 1);
        return next;
      });
    } else {
      s = pdb_->Update(key, ValueFor(item, cfg_.value_size));
    }
    auto dt = std::chrono::duration_cast<std::chrono::nanoseconds>(
                  std::chrono::steady_clock::now() - t0)
                  .count();
    hist->Record(static_cast<uint64_t>(dt));
    if (!s.ok()) failures->fetch_add(1);
  }

  void RunPlainPointOp(double dice, uint64_t item, const std::string& key,
                       LatencyHistogram* hist,
                       std::atomic<uint64_t>* failures) {
    auto t0 = std::chrono::steady_clock::now();
    Status s;
    if (dice < mix_.scan_frac + mix_.read_frac) {
      s = plain_->Get(key, &value_buf_);
    } else if (dice < mix_.scan_frac + mix_.read_frac + mix_.rmw_frac) {
      s = plain_->Get(key, &value_buf_);
      if (s.ok()) {
        if (!value_buf_.empty()) {
          value_buf_[0] = static_cast<char>(value_buf_[0] + 1);
        }
        s = plain_->Update(key, value_buf_);
      }
    } else {
      s = plain_->Update(key, ValueFor(item, cfg_.value_size));
    }
    auto dt = std::chrono::duration_cast<std::chrono::nanoseconds>(
                  std::chrono::steady_clock::now() - t0)
                  .count();
    hist->Record(static_cast<uint64_t>(dt));
    if (!s.ok()) failures->fetch_add(1);
  }

  PartitionedDatabase* pdb_;
  Database* plain_;  // when set, ops bypass the serving layer entirely
  const MixSpec& mix_;
  const BenchConfig& cfg_;
  ZipfianGenerator zipf_;
  Random rng_;
  std::string value_buf_;  // reused Get target (capacity sticks)
};

std::vector<std::pair<std::string, std::string>> LoadRecords(
    const BenchConfig& cfg) {
  std::vector<std::pair<std::string, std::string>> records;
  records.reserve(cfg.records);
  for (uint64_t i = 0; i < cfg.records; ++i) {
    records.emplace_back(EncodeU64Key(i * cfg.key_stride),
                         ValueFor(i, cfg.value_size));
  }
  return records;
}

void PrintPhase(const char* mix, size_t parts, const char* phase,
                const PhaseResult& r) {
  std::printf("  %-10s P=%-3zu %-9s %9.0f ops/s   p50 %7.1f us   p99 %8.1f "
              "us   p999 %8.1f us%s\n",
              mix, parts, phase, r.OpsPerSec(), r.p50_ns / 1000.0,
              r.p99_ns / 1000.0, r.p999_ns / 1000.0,
              r.failures ? "   [FAILURES]" : "");
}

void AddPhase(JsonReporter* json, const std::string& prefix, size_t parts,
              const PhaseResult& r) {
  json->Add(prefix + ".ops_per_s", r.OpsPerSec(), "ops/s",
            static_cast<int>(parts));
  json->Add(prefix + ".p50_us", r.p50_ns / 1000.0, "us",
            static_cast<int>(parts));
  json->Add(prefix + ".p99_us", r.p99_ns / 1000.0, "us",
            static_cast<int>(parts));
  json->Add(prefix + ".p999_us", r.p999_ns / 1000.0, "us",
            static_cast<int>(parts));
  json->Add(prefix + ".failures", static_cast<double>(r.failures), "count",
            static_cast<int>(parts));
}

int Main(int argc, char** argv) {
  const bool quick = bench::HasFlag(argc, argv, "--quick");
  BenchConfig cfg;
  if (quick) {
    cfg.records = 4000;
    cfg.phase_ms = 250;
  }
  if (const char* ms = bench::FlagValue(argc, argv, "--ms")) {
    cfg.phase_ms = std::atoi(ms);
  }

  std::vector<size_t> partition_counts =
      quick ? std::vector<size_t>{1, 4} : std::vector<size_t>{1, 4, 16};

  JsonReporter json("ycsb", argc, argv);
  bench::Header("YCSB-style serving-layer percentiles",
                "online reorganization must not wreck tail latency: the "
                "active column spans ReorganizeAll() on the same data");
  std::printf("records=%llu sparse-fill=0.5 phase=%dms%s\n\n",
              static_cast<unsigned long long>(cfg.records), cfg.phase_ms,
              quick ? " (--quick)" : "");

  int exit_code = 0;
  for (const MixSpec& mix : kMixes) {
    for (size_t parts : partition_counts) {
      MemEnv env;
      PartitionedDBOptions opts;
      opts.partitions = parts;
      opts.base.buffer_pool_pages = 2048;
      opts.max_concurrent_reorgs = 1;
      std::unique_ptr<PartitionedDatabase> pdb;
      Status s = PartitionedDatabase::Open(&env, opts, &pdb);
      if (!s.ok()) {
        std::fprintf(stderr, "open failed: %s\n", s.ToString().c_str());
        return 1;
      }
      s = pdb->BulkLoad(LoadRecords(cfg), /*leaf_fill=*/0.5);
      if (!s.ok()) {
        std::fprintf(stderr, "load failed: %s\n", s.ToString().c_str());
        return 1;
      }

      const std::string cell =
          std::string(mix.name) + ".p" + std::to_string(parts);

      // Phase 1: quiesced.
      PhaseResult quiesced;
      {
        MixDriver driver(pdb.get(), nullptr, mix, cfg, 1000 + parts);
        Timer t;
        driver.Run([&]() { return t.Seconds() * 1000 >= cfg.phase_ms; },
                   &quiesced);
      }
      PrintPhase(mix.name, parts, "quiesced", quiesced);
      AddPhase(&json, cell + ".quiesced", parts, quiesced);

      // Phase 2: the window spans a full ReorganizeAll of the sparse trees.
      PhaseResult active;
      std::atomic<bool> reorg_done{false};
      Status reorg_status;
      Timer reorg_timer;
      std::thread reorg([&]() {
        reorg_status = pdb->ReorganizeAll();
        reorg_done.store(true);
      });
      {
        MixDriver driver(pdb.get(), nullptr, mix, cfg, 2000 + parts);
        driver.Run([&]() { return reorg_done.load(); }, &active);
      }
      reorg.join();
      double reorg_s = reorg_timer.Seconds();
      if (!reorg_status.ok()) {
        std::fprintf(stderr, "reorg failed: %s\n",
                     reorg_status.ToString().c_str());
        exit_code = 1;
      }
      PrintPhase(mix.name, parts, "active", active);
      AddPhase(&json, cell + ".active", parts, active);
      json.Add(cell + ".reorg_s", reorg_s, "s", static_cast<int>(parts));

      for (size_t p = 0; p < parts; ++p) {
        bench::Check(pdb->partition(p), "post-reorg");
      }
      if (quiesced.failures != 0 || active.failures != 0) {
        std::fprintf(stderr, "unexpected op failures in %s\n", cell.c_str());
        exit_code = 1;
      }

      // The P=1 cell also measures serving-layer overhead against a plain
      // Database on identical data and mix.
      if (parts == 1) {
        MemEnv plain_env;
        DatabaseOptions plain_opts;
        plain_opts.buffer_pool_pages = 2048;
        std::unique_ptr<Database> plain;
        if (!Database::Open(&plain_env, plain_opts, &plain).ok() ||
            !plain->BulkLoad(LoadRecords(cfg), 0.5).ok()) {
          std::fprintf(stderr, "plain baseline setup failed\n");
          return 1;
        }
        PhaseResult base;
        {
          MixDriver driver(nullptr, plain.get(), mix, cfg, 1000 + parts);
          Timer t;
          driver.Run([&]() { return t.Seconds() * 1000 >= cfg.phase_ms; },
                     &base);
        }
        PrintPhase(mix.name, 1, "plain", base);
        AddPhase(&json, std::string(mix.name) + ".plain", 1, base);
        double overhead_pct =
            base.OpsPerSec() > 0
                ? (base.OpsPerSec() - quiesced.OpsPerSec()) /
                      base.OpsPerSec() * 100.0
                : 0.0;
        std::printf("  %-10s P=1   overhead vs plain: %+.1f%% (bound 10%%)\n",
                    mix.name, overhead_pct);
        json.Add(std::string(mix.name) + ".p1.overhead_pct", overhead_pct,
                 "%", 1);
      }
    }
    std::printf("\n");
  }

  if (!json.Write()) exit_code = 1;
  return exit_code;
}

}  // namespace
}  // namespace soreorg

int main(int argc, char** argv) { return soreorg::Main(argc, argv); }
