// E2 — §8's headline claim: "This increased concurrency is the most
// important advantage our method has over [Smith '90]."
//
// Four user threads run a 70/30 read/write mix while the reorganization
// executes. The DiskModel's realtime mode stalls every physical page access
// by a scaled-down 1996 disk latency, so lock-hold windows reflect real I/O
// (the paper's setting) rather than RAM speeds.
//
// Reported per method: reorg duration, user throughput during the reorg,
// throughput degradation vs the no-reorg baseline, and worst-case user op
// latency.

#include "bench/bench_util.h"
#include "src/baseline/smith_reorg.h"

using namespace soreorg;
using namespace soreorg::bench;

namespace {

uint64_t g_n = 20000;
double g_idle_window_secs = 2.0;
constexpr double kRealtimeScale = 0.002;  // 1996 latencies scaled 500x down

struct RunResult {
  double reorg_secs = 0;
  double ops_per_sec = 0;
  uint64_t max_latency_us = 0;
  uint64_t p50_us = 0;
  uint64_t p99_us = 0;
  uint64_t p999_us = 0;
  uint64_t failures = 0;
};

RunResult RunUnder(const std::function<Status(Database*)>& reorganize) {
  MemEnv env;
  DatabaseOptions options;
  options.buffer_pool_pages = 96;  // force real page I/O during the run
  std::unique_ptr<Database> db;
  Database::Open(&env, options, &db);
  std::vector<uint64_t> survivors;
  SparsifyByDeletion(db.get(), g_n, 64, 0.95, 0.7, 10, 21, &survivors);
  db->buffer_pool()->FlushAndSync();

  DiskModel model;
  model.set_realtime_scale(kRealtimeScale);
  model.Attach(db->disk_manager());

  DriverOptions dopts;
  dopts.threads = 4;
  dopts.key_space = g_n;
  ConcurrentDriver driver(db.get(), dopts);
  driver.Start();
  std::this_thread::sleep_for(std::chrono::milliseconds(300));  // warm up
  uint64_t ops_before = driver.stats().ops;

  // Throughput is measured strictly over the reorganization window (the
  // baseline idles for a fixed window instead).
  Timer t;
  Status s = reorganize(db.get());
  double reorg_secs = t.Seconds();
  if (reorg_secs < 0.5) {
    // Baseline (no-op): observe an idle window of the same order.
    while (t.Seconds() < g_idle_window_secs) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    reorg_secs = t.Seconds();
  }
  uint64_t ops_during = driver.stats().ops - ops_before;
  driver.Stop();
  if (!s.ok()) {
    std::fprintf(stderr, "reorg status: %s\n", s.ToString().c_str());
  }
  Check(db.get(), "E2 run");

  DriverStats st = driver.stats();
  RunResult r;
  r.reorg_secs = reorg_secs;
  r.ops_per_sec = static_cast<double>(ops_during) / reorg_secs;
  r.max_latency_us = st.max_latency_ns / 1000;
  r.p50_us = st.p50_ns / 1000;
  r.p99_us = st.p99_ns / 1000;
  r.p999_us = st.p999_ns / 1000;
  r.failures = st.failures;
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  Header("E2: user concurrency during reorganization (§8 vs Smith '90)",
         "the paper's units lock only the leaves being moved (plus the base "
         "page briefly); Smith '90 X-locks the whole file per block "
         "operation, shutting users out");

  JsonReporter json("bench_concurrency", argc, argv);
  if (HasFlag(argc, argv, "--quick")) {  // CI smoke: seconds, not minutes
    g_n = 4000;
    g_idle_window_secs = 0.5;
  }

  // Baseline: no reorganization at all, same kind of window.
  RunResult base = RunUnder([](Database*) { return Status::OK(); });

  RunResult paper = RunUnder([](Database* db) { return db->Reorganize(); });

  RunResult smith = RunUnder([](Database* db) {
    SmithReorganizer smith(db->tree(), db->buffer_pool(), db->log_manager(),
                           db->lock_manager(), db->disk_manager(),
                           db->reorg_table(), db->txn_manager(),
                           SmithOptions{});
    return smith.Run();
  });

  std::printf("%-14s %10s %14s %12s %9s %9s %9s %11s %9s\n", "method",
              "reorg s", "user ops/s", "vs baseline", "p50 us", "p99 us",
              "p999 us", "max (us)", "failures");
  auto row = [&](const char* name, const RunResult& r) {
    std::printf("%-14s %10.2f %14.0f %11.0f%% %9llu %9llu %9llu %11llu %9llu\n",
                name, r.reorg_secs, r.ops_per_sec,
                100.0 * r.ops_per_sec / base.ops_per_sec,
                (unsigned long long)r.p50_us, (unsigned long long)r.p99_us,
                (unsigned long long)r.p999_us,
                (unsigned long long)r.max_latency_us,
                (unsigned long long)r.failures);
  };
  row("no reorg", base);
  row("paper", paper);
  row("Smith '90", smith);

  auto emit = [&](const char* name, const RunResult& r) {
    std::string prefix = std::string("e2/") + name;
    json.Add(prefix + "/user_ops_per_sec", r.ops_per_sec, "ops/s", 4);
    json.Add(prefix + "/reorg_secs", r.reorg_secs, "s", 4);
    json.Add(prefix + "/max_latency_us", static_cast<double>(r.max_latency_us),
             "us", 4);
    json.Add(prefix + "/p50_us", static_cast<double>(r.p50_us), "us", 4);
    json.Add(prefix + "/p99_us", static_cast<double>(r.p99_us), "us", 4);
    json.Add(prefix + "/p999_us", static_cast<double>(r.p999_us), "us", 4);
    json.Add(prefix + "/failures", static_cast<double>(r.failures), "count", 4);
  };
  emit("baseline", base);
  emit("paper", paper);
  emit("smith90", smith);
  json.Add("e2/paper/throughput_vs_baseline",
           100.0 * paper.ops_per_sec / base.ops_per_sec, "%", 4);

  std::printf("\nexpected shape: the paper's method keeps user throughput "
              "near the baseline;\nSmith '90 collapses it (whole-file X "
              "lock per block operation) and has the\nworst tail latency.\n");
  return json.Write() ? 0 : 1;
}
