// E8 — §7.1–7.2: the side file absorbs concurrent base-page updates during
// pass 3 and the catch-up converges ("Since leaf page splits don't happen
// very often, we will eventually catch up all the changes").
//
// Sweep the concurrent insert pressure (updater thread count) and report
// side-file traffic, catch-up volume, the final-catch-up size under the
// switch's X lock, and whether everything converged.

#include <atomic>
#include <thread>

#include "bench/bench_util.h"

using namespace soreorg;
using namespace soreorg::bench;

int main(int argc, char** argv) {
  Header("E8: side-file catch-up under concurrent updates (§7.1–7.2)",
         "updates behind CK go to the side file; catch-up drains it; the "
         "switch's final catch-up handles only the few entries recorded "
         "while waiting for the X lock");
  JsonReporter json("bench_sidefile", argc, argv);

  const uint64_t kN = 120000;
  // Slow the builder down to disk speed so the build window is long enough
  // for concurrent splits to land both ahead of and behind CK.
  
  std::printf("%-9s %12s %12s %14s %16s %12s %10s\n", "updaters", "inserts",
              "recorded", "applied", "final catch-up", "switch ms",
              "converged");

  for (int threads : {0, 1, 2, 4}) {
    MemEnv env;
    DatabaseOptions options;
    options.reorg.builder.stable_every = 2;
    // Pace the builder at ~20 ms per base page (no locks held while
    // sleeping): this stands in for the multi-minute builds of very large
    // trees, so concurrent splits land both ahead of and behind CK.
    options.reorg.builder.base_page_delay_ms = 20;
    auto db = SparseDb(&env, kN, 0.7, 21, options);
    // NOTE: no pass 1 — the sparse tree has ~7x more base pages, widening
    // the build window the side file must cover.

    std::atomic<bool> stop{false};
    std::atomic<uint64_t> inserted{0};
    std::vector<std::thread> updaters;
    for (int t = 0; t < threads; ++t) {
      updaters.emplace_back([&, t]() {
        // Insert dense runs so leaves actually split (base-page updates are
        // what the side file intercepts).
        Random rng(t * 131 + 7);
        while (!stop.load()) {
          uint64_t slot = rng.Uniform(kN - 10);
          for (int j = 0; j < 90 && !stop.load(); ++j) {
            uint64_t k = (slot + j / 9) * 10 + 1 + (j % 9);
            if (db->Put(EncodeU64Key(k), std::string(64, 'n')).ok()) {
              ++inserted;
            }
          }
        }
      });
    }
    if (threads > 0) {
      while (inserted.load() == 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    }
    uint64_t recorded_before = db->side_file()->total_recorded();
    Status s = db->reorganizer()->RunInternalPass();
    stop.store(true);
    for (auto& t : updaters) t.join();
    Check(db.get(), "E8");
    const SwitchStats& sw = db->reorganizer()->switch_stats();
    const ReorgStats& rs = db->reorganizer()->stats();
    bool converged = s.ok() && db->side_file()->size() == 0;
    if (!s.ok()) {
      std::printf("  (pass 3 status: %s)\n", s.ToString().c_str());
    }
    std::printf("%-9d %12llu %12llu %14llu %16llu %12.3f %10s\n", threads,
                (unsigned long long)inserted.load(),
                (unsigned long long)(db->side_file()->total_recorded() -
                                     recorded_before),
                (unsigned long long)rs.side_entries_applied,
                (unsigned long long)sw.final_catchup_entries,
                sw.switch_window_ns / 1e6, converged ? "yes" : "NO");
    std::string prefix = "e8/updaters" + std::to_string(threads);
    json.Add(prefix + "/recorded",
             static_cast<double>(db->side_file()->total_recorded() -
                                 recorded_before),
             "entries", threads);
    json.Add(prefix + "/final_catchup",
             static_cast<double>(sw.final_catchup_entries), "entries",
             threads);
    json.Add(prefix + "/switch_ms", sw.switch_window_ns / 1e6, "ms",
             threads);
    json.Add(prefix + "/converged", converged ? 1.0 : 0.0, "bool", threads);
  }
  std::printf("\nexpected shape: recorded entries grow with update pressure "
              "but catch-up always\nconverges; the final (X-locked) "
              "catch-up stays small because most entries are\napplied "
              "before the switch begins.\n");
  return json.Write() ? 0 : 1;
}
