// E5 — §2's motivation: "it will take more page reads for a sparsely
// populated B+-tree than for a normal one", and out-of-order leaves cost
// seeks. Full scans and short range scans are timed with the DiskModel at
// each stage of the reorganization.

#include "bench/bench_util.h"

using namespace soreorg;
using namespace soreorg::bench;

namespace {

struct ScanCost {
  uint64_t reads = 0;
  double ms = 0;
  double seq_frac = 0;
};

ScanCost FullScan(Database* db, DiskModel* model) {
  db->buffer_pool()->FlushAll();
  model->Reset();
  db->Scan(Slice(), Slice(), [](const Slice&, const Slice&) { return true; });
  DiskModelStats st = model->stats();
  ScanCost c;
  c.reads = st.reads;
  c.ms = st.total_ms;
  c.seq_frac = st.accesses
                   ? static_cast<double>(st.sequential) / st.accesses
                   : 0;
  return c;
}

ScanCost ShortScans(Database* db, DiskModel* model, uint64_t key_space) {
  db->buffer_pool()->FlushAll();
  model->Reset();
  Random rng(17);
  for (int i = 0; i < 200; ++i) {
    uint64_t start = rng.Uniform(key_space);
    int count = 0;
    db->Scan(EncodeU64Key(start * 10), Slice(),
             [&count](const Slice&, const Slice&) { return ++count < 100; });
  }
  DiskModelStats st = model->stats();
  ScanCost c;
  c.reads = st.reads;
  c.ms = st.total_ms;
  c.seq_frac = st.accesses
                   ? static_cast<double>(st.sequential) / st.accesses
                   : 0;
  return c;
}

}  // namespace

int main(int argc, char** argv) {
  Header("E5: range-scan cost through the passes (§2 motivation)",
         "sparse trees need more page reads for the same data; compacted "
         "but out-of-order leaves pay seeks; ordering restores sequential "
         "I/O");
  JsonReporter json("bench_range_scan", argc, argv);

  const uint64_t kN = 30000;
  for (double del : {0.6, 0.75}) {
    MemEnv env;
    DatabaseOptions options;
    options.buffer_pool_pages = 64;
    std::unique_ptr<Database> db;
    Database::Open(&env, options, &db);
    std::vector<uint64_t> survivors;
    AgingOptions aging;
    aging.n = kN;
    aging.cluster_delete_frac = 0.25;
    aging.random_delete_frac = del;  // survivors' fill ~ 0.95 * (1 - del)
    aging.churn_inserts = 4000;
    aging.seed = 7;
    AgeDatabase(db.get(), aging, &survivors);
    DiskModel model;
    model.Attach(db->disk_manager());

    std::printf("aged (~%0.f%% deleted + churn), %zu records:\n", del * 100,
                survivors.size());
    std::printf("  %-18s %14s %12s %10s %16s %12s\n", "stage", "scan reads",
                "scan ms", "seq frac", "200x100 reads", "ms");
    char cfg[32];
    std::snprintf(cfg, sizeof(cfg), "e5/del%.0f", del * 100);
    auto row = [&](const char* stage, const char* slug) {
      ScanCost f = FullScan(db.get(), &model);
      ScanCost s = ShortScans(db.get(), &model, kN);
      std::printf("  %-18s %14llu %12.1f %10.2f %16llu %12.1f\n", stage,
                  (unsigned long long)f.reads, f.ms, f.seq_frac,
                  (unsigned long long)s.reads, s.ms);
      std::string prefix = std::string(cfg) + "/" + slug;
      json.Add(prefix + "/scan_reads", static_cast<double>(f.reads),
               "reads");
      json.Add(prefix + "/scan_ms", f.ms, "ms");
      json.Add(prefix + "/seq_frac", f.seq_frac, "fraction");
      json.Add(prefix + "/short_ms", s.ms, "ms");
    };
    row("degraded", "degraded");
    db->reorganizer()->RunLeafPass();
    Check(db.get(), "p1");
    row("after pass 1", "pass1");
    db->reorganizer()->RunSwapPass();
    Check(db.get(), "p2");
    row("after pass 2", "pass2");
    db->reorganizer()->RunInternalPass();
    Check(db.get(), "p3");
    row("after pass 3", "pass3");
    std::printf("\n");
  }
  std::printf("expected shape: pass 1 cuts page reads ~(f2/f1)x; pass 2 "
              "restores the\nsequential fraction and cuts simulated time; "
              "pass 3 trims a few internal reads.\n");
  return json.Write() ? 0 : 1;
}
