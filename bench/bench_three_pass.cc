// F1 — Figure 1: the three-pass algorithm, end to end. For several initial
// sparsities, print the tree shape after each pass: compaction raises fill
// and drops leaf count, swapping puts leaves in disk key order, the internal
// pass shrinks the upper levels and (when possible) the height.

#include "bench/bench_util.h"

using namespace soreorg;
using namespace soreorg::bench;

namespace {

double DiskOrderFraction(Database* db) {
  std::vector<PageId> leaves;
  db->tree()->CollectLeaves(&leaves);
  if (leaves.size() < 2) return 1.0;
  size_t asc = 0;
  for (size_t i = 1; i < leaves.size(); ++i) {
    if (leaves[i] > leaves[i - 1]) ++asc;
  }
  return static_cast<double>(asc) / static_cast<double>(leaves.size() - 1);
}

void Row(const char* stage, Database* db, double secs) {
  BTreeStats st = Shape(db);
  std::printf("  %-16s h=%llu leaves=%5llu internal=%3llu fill=%.2f "
              "disk-order=%.2f  (%.3fs)\n",
              stage, (unsigned long long)st.height,
              (unsigned long long)st.leaf_pages,
              (unsigned long long)st.internal_pages, st.avg_leaf_fill,
              DiskOrderFraction(db), secs);
}

}  // namespace

int main(int argc, char** argv) {
  Header("F1: the three-pass algorithm (Figure 1)",
         "pass 1 compacts sparse leaves; pass 2 puts them in key order on "
         "disk; pass 3 shrinks the tree by rebuilding the upper levels "
         "new-place and switching");
  JsonReporter json("bench_three_pass", argc, argv);

  const uint64_t kN = 40000;
  for (double f : {0.5, 0.7, 0.85}) {
    std::printf("n=%llu records, %0.f%% deleted:\n", (unsigned long long)kN,
                f * 100);
    MemEnv env;
    auto db = SparseDb(&env, kN, f, 9);
    Row("sparse", db.get(), 0);

    Timer t1;
    db->reorganizer()->RunLeafPass();
    Row("pass 1 compact", db.get(), t1.Seconds());
    Check(db.get(), "pass 1");
    double pass1_s = t1.Seconds();

    Timer t2;
    db->reorganizer()->RunSwapPass();
    Row("pass 2 order", db.get(), t2.Seconds());
    Check(db.get(), "pass 2");
    double pass2_s = t2.Seconds();

    Timer t3;
    db->reorganizer()->RunInternalPass();
    Row("pass 3 shrink", db.get(), t3.Seconds());
    Check(db.get(), "pass 3");
    double pass3_s = t3.Seconds();

    const ReorgStats& rs = db->reorganizer()->stats();
    std::printf("  units: %llu compact, %llu move, %llu swap; %llu records "
                "moved; %llu pages freed\n\n",
                (unsigned long long)rs.compact_units,
                (unsigned long long)rs.move_units,
                (unsigned long long)rs.swap_units,
                (unsigned long long)rs.records_moved,
                (unsigned long long)rs.pages_freed);

    BTreeStats shape = Shape(db.get());
    char prefix[32];
    std::snprintf(prefix, sizeof(prefix), "f1/del%.0f", f * 100);
    json.Add(std::string(prefix) + "/pass1_s", pass1_s, "s");
    json.Add(std::string(prefix) + "/pass2_s", pass2_s, "s");
    json.Add(std::string(prefix) + "/pass3_s", pass3_s, "s");
    json.Add(std::string(prefix) + "/final_fill", shape.avg_leaf_fill,
             "fraction");
    json.Add(std::string(prefix) + "/disk_order",
             DiskOrderFraction(db.get()), "fraction");
    json.Add(std::string(prefix) + "/pages_freed",
             static_cast<double>(rs.pages_freed), "pages");
  }
  return json.Write() ? 0 : 1;
}
