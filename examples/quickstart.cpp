// Quickstart: open a database, load data, degrade it with deletions, run
// the paper's three-pass on-line reorganization, and verify the result.
//
//   build/examples/example_quickstart

#include <cstdio>

#include "src/db/database.h"
#include "src/sim/workload.h"
#include "src/util/coding.h"

using namespace soreorg;

static void PrintShape(Database* db, const char* label) {
  BTreeStats st;
  db->tree()->ComputeStats(&st);
  std::printf("%-22s height=%llu leaves=%llu internal=%llu records=%llu "
              "avg leaf fill=%.2f\n",
              label, (unsigned long long)st.height,
              (unsigned long long)st.leaf_pages,
              (unsigned long long)st.internal_pages,
              (unsigned long long)st.records, st.avg_leaf_fill);
}

int main() {
  MemEnv env;  // swap in PosixEnv for a real on-disk database
  DatabaseOptions options;
  std::unique_ptr<Database> db;
  Status s = Database::Open(&env, options, &db);
  if (!s.ok()) {
    std::fprintf(stderr, "open failed: %s\n", s.ToString().c_str());
    return 1;
  }

  // 1. Basic operations.
  db->Put("apple", "red");
  db->Put("banana", "yellow");
  db->Put("cherry", "dark red");
  std::string value;
  db->Get("banana", &value);
  std::printf("banana -> %s\n", value.c_str());
  db->Delete("banana");
  std::printf("banana deleted: %s\n",
              db->Get("banana", &value).IsNotFound() ? "yes" : "no");
  db->Delete("apple");
  db->Delete("cherry");

  // 2. Load 20k records, then delete 70% of them. Free-at-empty never
  // consolidates, so the tree ends up sparse — the paper's problem setting.
  std::printf("\nloading 20000 records, deleting 70%%...\n");
  std::vector<uint64_t> survivors;
  s = SparsifyByDeletion(db.get(), 20000, 64, 0.95, 0.70, 10, 42, &survivors);
  if (!s.ok()) {
    std::fprintf(stderr, "load failed: %s\n", s.ToString().c_str());
    return 1;
  }
  PrintShape(db.get(), "sparse tree:");

  // 3. On-line reorganization: pass 1 compacts leaves, pass 2 puts them in
  // key order on disk, pass 3 rebuilds the upper levels and switches.
  s = db->Reorganize();
  if (!s.ok()) {
    std::fprintf(stderr, "reorganize failed: %s\n", s.ToString().c_str());
    return 1;
  }
  PrintShape(db.get(), "after reorganization:");
  const ReorgStats& rs = db->reorganizer()->stats();
  std::printf("units=%llu (compact=%llu move=%llu swap=%llu) "
              "records moved=%llu pages freed=%llu\n",
              (unsigned long long)rs.units,
              (unsigned long long)rs.compact_units,
              (unsigned long long)rs.move_units,
              (unsigned long long)rs.swap_units,
              (unsigned long long)rs.records_moved,
              (unsigned long long)rs.pages_freed);

  // 4. Every record is still there.
  uint64_t found = 0;
  for (uint64_t k : survivors) {
    if (db->Get(EncodeU64Key(k), &value).ok()) ++found;
  }
  std::printf("verified %llu/%zu surviving records readable\n",
              (unsigned long long)found, survivors.size());
  s = db->tree()->CheckConsistency();
  std::printf("tree consistency: %s\n", s.ToString().c_str());
  return s.ok() && found == survivors.size() ? 0 : 1;
}
