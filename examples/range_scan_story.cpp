// The paper's §2 motivation, end to end: deletions degrade range-scan
// performance (sparse pages => more reads; out-of-order pages => more
// seeks), and the three passes repair it. Timings come from the DiskModel
// (a mid-90s disk-arm cost model attached to the page I/O stream).
//
//   build/examples/example_range_scan_story

#include <cstdio>

#include "src/db/database.h"
#include "src/sim/disk_model.h"
#include "src/sim/workload.h"
#include "src/util/coding.h"

using namespace soreorg;

namespace {

struct ScanCost {
  uint64_t records = 0;
  uint64_t reads = 0;
  double ms = 0;
};

ScanCost TimeFullScan(Database* db, DiskModel* model) {
  // Drop the cache so the scan hits "disk".
  db->buffer_pool()->FlushAll();
  model->Reset();
  ScanCost cost;
  db->Scan(Slice(), Slice(), [&](const Slice&, const Slice&) {
    ++cost.records;
    return true;
  });
  DiskModelStats st = model->stats();
  cost.reads = st.reads;
  cost.ms = st.total_ms;
  return cost;
}

void Report(const char* label, const ScanCost& c) {
  std::printf("%-28s %8llu records  %6llu page reads  %10.1f ms (simulated)\n",
              label, (unsigned long long)c.records,
              (unsigned long long)c.reads, c.ms);
}

}  // namespace

int main() {
  MemEnv env;
  DatabaseOptions options;
  options.buffer_pool_pages = 64;  // small cache: scans must hit the disk
  std::unique_ptr<Database> db;
  Status s = Database::Open(&env, options, &db);
  if (!s.ok()) return 1;

  DiskModel model;
  model.Attach(db->disk_manager());

  // A healthy, dense, disk-ordered tree.
  std::vector<uint64_t> survivors;
  s = SparsifyByDeletion(db.get(), 30000, 64, 0.95, 0.0, 10, 7, &survivors);
  if (!s.ok()) return 1;
  Report("dense, in order:", TimeFullScan(db.get(), &model));

  // Months of churn: 70% of the records deleted (free-at-empty keeps the
  // sparse pages), then fresh inserts that split pages out of disk order.
  Random rng(3);
  uint64_t deleted = 0;
  for (uint64_t k = 0; k < 30000; ++k) {
    if (rng.Bernoulli(0.7)) {
      if (db->Delete(EncodeU64Key(k * 10)).ok()) ++deleted;
    }
  }
  for (uint64_t i = 0; i < 2000; ++i) {
    db->Put(EncodeU64Key(rng.Uniform(30000) * 10 + 1 + rng.Uniform(8)),
            std::string(64, 'n'));
  }
  std::printf("\nafter deleting %llu records and inserting 2000 new ones:\n",
              (unsigned long long)deleted);
  Report("degraded:", TimeFullScan(db.get(), &model));

  // Pass 1 only: compaction fixes the page-count problem.
  s = db->reorganizer()->RunLeafPass();
  if (!s.ok()) return 1;
  Report("after pass 1 (compact):", TimeFullScan(db.get(), &model));

  // Pass 2: swap/move into key order fixes the seek problem. The paper
  // suggests running it "only when range query performance falls below
  // some acceptable level" — this is that moment.
  s = db->reorganizer()->RunSwapPass();
  if (!s.ok()) return 1;
  Report("after pass 2 (order):", TimeFullScan(db.get(), &model));

  // Pass 3: shrink the upper levels and switch.
  s = db->reorganizer()->RunInternalPass();
  if (!s.ok()) return 1;
  Report("after pass 3 (shrink):", TimeFullScan(db.get(), &model));

  s = db->tree()->CheckConsistency();
  std::printf("\ntree consistency: %s\n", s.ToString().c_str());
  return s.ok() ? 0 : 1;
}
