// Forward Recovery (§5.1), demonstrated: crash the system in the middle of
// a reorganization unit, restart, and watch recovery FINISH the unit instead
// of rolling it back — no reorganization work is lost and the tree stays
// consistent.
//
//   build/examples/example_crash_and_forward_recovery

#include <cstdio>

#include "src/db/database.h"
#include "src/sim/crash_injector.h"
#include "src/sim/workload.h"
#include "src/util/coding.h"

using namespace soreorg;

int main() {
  MemEnv env;
  CrashInjector injector(&env);
  DatabaseOptions options;  // RecoveryPolicy::kForward is the default
  std::unique_ptr<Database> db;
  Status s = Database::Open(&env, options, &db);
  if (!s.ok()) return 1;

  std::vector<uint64_t> survivors;
  s = SparsifyByDeletion(db.get(), 10000, 64, 0.95, 0.7, 10, 42, &survivors);
  if (!s.ok()) return 1;
  db->Checkpoint();
  BTreeStats before;
  db->tree()->ComputeStats(&before);
  std::printf("sparse tree: %llu leaves at %.2f fill, %zu records\n",
              (unsigned long long)before.leaf_pages, before.avg_leaf_fill,
              survivors.size());

  // Let a few units run, then fail the system mid-unit: the 25th WAL write
  // lands somewhere inside a reorganization unit.
  std::printf("\nrunning pass 1 with a crash armed at WAL write #25...\n");
  injector.ArmAfterOps(25, options.name + ".wal");
  s = db->reorganizer()->RunLeafPass();
  std::printf("pass 1 stopped: %s (crash fired: %s)\n", s.ToString().c_str(),
              injector.fired() ? "yes" : "no");
  injector.Disarm();

  // "System failure": everything unsynced evaporates; reopen runs recovery.
  db.reset();
  env.Crash();
  s = Database::Open(&env, options, &db);
  if (!s.ok()) {
    std::fprintf(stderr, "recovery failed: %s\n", s.ToString().c_str());
    return 1;
  }

  const RecoveryResult& rr = db->recovery_result();
  std::printf("\nrecovery: scanned %llu log records, redid %llu\n",
              (unsigned long long)rr.records_scanned,
              (unsigned long long)rr.records_redone);
  std::printf("incomplete reorganization unit found: %s\n",
              rr.reorg.has_open_unit ? "yes — FINISHED forward, not undone"
                                     : "no (crash fell between units)");
  std::printf("largest finished key (LK, the restart position): %llu\n",
              (unsigned long long)DecodeU64Key(
                  db->reorg_table()->largest_finished_key()));

  s = db->tree()->CheckConsistency();
  std::printf("tree consistency after forward recovery: %s\n",
              s.ToString().c_str());

  uint64_t found = 0;
  std::string v;
  for (uint64_t k : survivors) {
    if (db->Get(EncodeU64Key(k), &v).ok()) ++found;
  }
  std::printf("records intact: %llu/%zu\n", (unsigned long long)found,
              survivors.size());

  // The pass resumes from LK and completes the rest of the tree.
  std::printf("\nresuming pass 1 from LK...\n");
  s = db->reorganizer()->RunLeafPass();
  BTreeStats after;
  db->tree()->ComputeStats(&after);
  std::printf("final: %llu leaves at %.2f fill (%s)\n",
              (unsigned long long)after.leaf_pages, after.avg_leaf_fill,
              s.ToString().c_str());
  return s.ok() && found == survivors.size() ? 0 : 1;
}
