// The availability story (§4): user transactions keep flowing while the
// reorganizer runs. Readers and updaters hammer the tree from four threads;
// the reorganizer compacts, reorders and rebuilds underneath them using the
// R/RX/RS protocol. Compare the same run with the Smith '90 baseline, which
// X-locks the whole file for every block operation.
//
//   build/examples/example_concurrent_reorg

#include <chrono>
#include <cstdio>

#include "src/baseline/smith_reorg.h"
#include "src/db/database.h"
#include "src/sim/disk_model.h"
#include "src/sim/workload.h"

using namespace soreorg;

namespace {

struct RunResult {
  double reorg_seconds = 0;
  uint64_t user_ops = 0;
  uint64_t max_latency_us = 0;
  uint64_t failures = 0;
};

RunResult RunWithWorkload(Database* db, DiskModel* model,
                          const std::function<Status()>& reorganize) {
  DriverOptions dopts;
  dopts.threads = 4;
  dopts.key_space = 20000;
  ConcurrentDriver driver(db, dopts);
  driver.Start();
  // Warm-up so the driver is actually running.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  uint64_t before_ops = driver.stats().ops;
  (void)model;

  auto t0 = std::chrono::steady_clock::now();
  Status s = reorganize();
  double secs = std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - t0)
                    .count();
  uint64_t during_ops = driver.stats().ops - before_ops;
  driver.Stop();
  if (!s.ok()) {
    std::fprintf(stderr, "reorg failed: %s\n", s.ToString().c_str());
  }

  DriverStats st = driver.stats();
  RunResult r;
  r.reorg_seconds = secs;
  r.user_ops = during_ops;
  r.max_latency_us = st.max_latency_ns / 1000;
  r.failures = st.failures;
  return r;
}

std::unique_ptr<Database> FreshSparseDb(MemEnv* env, const char* name,
                                        DiskModel* model) {
  DatabaseOptions options;
  options.name = name;
  options.buffer_pool_pages = 96;  // force real page I/O
  std::unique_ptr<Database> db;
  Database::Open(env, options, &db);
  std::vector<uint64_t> survivors;
  SparsifyByDeletion(db.get(), 20000, 64, 0.95, 0.7, 10, 21, &survivors);
  db->buffer_pool()->FlushAndSync();
  // Page I/O stalls at scaled-down 1996 latencies, so lock-hold windows
  // reflect disk time the way the paper assumes.
  model->set_realtime_scale(0.002);
  model->Attach(db->disk_manager());
  return db;
}

}  // namespace

int main() {
  std::printf("4 user threads (70%% reads) running throughout each "
              "reorganization:\n\n");

  double paper_rate = 0, smith_rate = 0;
  {
    MemEnv env;
    DiskModel model;
    auto db = FreshSparseDb(&env, "paper", &model);
    RunResult r = RunWithWorkload(db.get(), &model,
                                  [&]() { return db->Reorganize(); });
    paper_rate = r.user_ops / r.reorg_seconds;
    std::printf("paper method   : reorg %.3fs, %.0f user ops/s during it "
                "(max latency %llu us, failures %llu)\n",
                r.reorg_seconds, paper_rate,
                (unsigned long long)r.max_latency_us,
                (unsigned long long)r.failures);
    Status s = db->tree()->CheckConsistency();
    std::printf("                 consistency: %s\n", s.ToString().c_str());
  }

  {
    MemEnv env;
    DiskModel model;
    auto db = FreshSparseDb(&env, "smith", &model);
    SmithReorganizer smith(db->tree(), db->buffer_pool(), db->log_manager(),
                           db->lock_manager(), db->disk_manager(),
                           db->reorg_table(), db->txn_manager(),
                           SmithOptions{});
    RunResult r = RunWithWorkload(db.get(), &model,
                                  [&]() { return smith.Run(); });
    smith_rate = r.user_ops / r.reorg_seconds;
    std::printf("Smith '90      : reorg %.3fs, %.0f user ops/s during it "
                "(max latency %llu us, failures %llu)\n",
                r.reorg_seconds, smith_rate,
                (unsigned long long)r.max_latency_us,
                (unsigned long long)r.failures);
    Status s = db->tree()->CheckConsistency();
    std::printf("                 consistency: %s\n", s.ToString().c_str());
  }

  std::printf("\nUser throughput during the paper's reorganization was "
              "%.1fx Smith '90's:\nits units lock only the leaves being "
              "moved, while Smith's lock out the whole file.\n",
              smith_rate > 0 ? paper_rate / smith_rate : 0.0);
  return 0;
}
